"""Unit tests for the batch experiment engine (:mod:`repro.exp`).

Covers the runner contract (deterministic ordering, timing and failure
capture), cache behaviour (hit/miss accounting, the in-process LRU
layer, pruning, warm-run speedup, atomic sharing between runners),
scheduler selection (``pool=`` / ``REPRO_POOL``), the pool's
shared-memory transport and wire protocol, and the determinism lock
the engine rework must preserve: the design flow yields an identical
bitstream and placement whether run serially or fanned out over a
worker pool.
"""

import os
import pickle
import threading
import time

import pytest

from repro.exp import (JobError, JobFailedError, JobSpec, NullCache,
                       ParallelRunner, ResultCache, canonical_json,
                       default_runner)
from repro.exp.tasks import execute, registered_kinds, task
from repro.flow.flow import FlowOptions, run_flow
from tests.test_flow import COUNTER_VHDL


@task("_test_echo")
def _echo(**params):
    """Test-only kind: returns its own parameters (serial use only)."""
    return dict(params)


# ---------------------------------------------------------------------------
# Job specs and keys
# ---------------------------------------------------------------------------

class TestJobSpec:
    def test_known_kinds_registered(self):
        assert {"detff", "clock_cell", "fig_point",
                "flow"} <= set(registered_kinds())

    def test_key_is_stable_and_param_order_free(self):
        a = JobSpec.make("fig_point", width_mult=2.0, wire_length=4)
        b = JobSpec(kind="fig_point",
                    params={"wire_length": 4, "width_mult": 2.0})
        assert a.key() == b.key()
        assert len(a.key()) == 64

    def test_key_changes_with_any_field(self):
        base = JobSpec.make("fig_point", width_mult=2.0, wire_length=4)
        keys = {
            base.key(),
            JobSpec.make("fig_point", width_mult=2.0,
                         wire_length=8).key(),
            JobSpec.make("fig_point", width_mult=2.5,
                         wire_length=4).key(),
            JobSpec.make("detff", width_mult=2.0, wire_length=4).key(),
            base.key(code_version="other"),
        }
        assert len(keys) == 5

    def test_canonical_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError):
            canonical_json({"bad": object()})

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown job kind"):
            execute(JobSpec.make("no_such_kind"))


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_put_get_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        hit, _ = cache.get(key)
        assert not hit and cache.misses == 1
        value = {"rows": [1.5, -0.25], "name": "x"}
        cache.put(key, value)
        hit, back = cache.get(key)
        assert hit and back == value and cache.hits == 1
        assert key in cache and len(cache) == 1
        assert cache.clear() == 1 and key not in cache

    @pytest.mark.parametrize("garbage", [b"not a pickle", b"garbage\n",
                                         b"", b"\x80\x05"])
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, [1, 2, 3])
        cache.path_for(key).write_bytes(garbage)
        # Read through a fresh instance: the writer's in-process LRU
        # still holds the good blob, but a disk read must see the
        # corruption and report a miss.
        hit, _ = ResultCache(tmp_path).get(key)
        assert not hit

    def test_null_cache_never_stores(self, tmp_path):
        cache = NullCache()
        cache.put("ef" + "2" * 62, "value")
        hit, _ = cache.get("ef" + "2" * 62)
        assert not hit and len(cache) == 0


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

class TestParallelRunner:
    def test_serial_echo_roundtrip(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        specs = [JobSpec.make("_test_echo", i=i) for i in range(5)]
        values = runner.run_values(specs)
        assert values == [{"i": i} for i in range(5)]

    def test_parallel_results_keep_submission_order(self, tmp_path):
        # Deliberately unsorted widths: results must come back in the
        # order submitted, not the order workers finish.
        widths = [4.0, 1.0, 2.0]
        specs = [JobSpec.make("fig_point", width_mult=w, wire_length=1,
                              dt=8e-12) for w in widths]
        runner = ParallelRunner(jobs=4, cache=ResultCache(tmp_path))
        results = runner.run(specs)
        assert [r.value.width_mult for r in results] == widths
        assert all(r.ok and not r.cached and r.seconds > 0
                   for r in results)

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        specs = [JobSpec.make("fig_point", width_mult=w, wire_length=2,
                              dt=8e-12) for w in (1.0, 4.0)]
        serial = ParallelRunner(
            jobs=1, cache=NullCache()).run_values(specs)
        parallel = ParallelRunner(
            jobs=4, cache=NullCache()).run_values(specs)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_failure_captured_without_sinking_the_batch(self, tmp_path):
        specs = [
            JobSpec.make("fig_point", width_mult=1.0, wire_length=0),
            JobSpec.make("fig_point", width_mult=1.0, wire_length=1,
                         dt=8e-12),
        ]
        runner = ParallelRunner(jobs=4, cache=ResultCache(tmp_path))
        bad, good = runner.run(specs)
        assert not bad.ok
        assert isinstance(bad.error, JobError)
        assert bad.error.kind == "error"
        assert "wire_length" in str(bad.error)
        assert good.ok and good.value.wire_length == 1
        with pytest.raises(RuntimeError, match="failed"):
            runner.run_values(specs[:1])
        # The structured triple survives for programmatic triage.
        try:
            runner.run_values(specs[:1])
        except JobFailedError as exc:
            assert exc.error.exc_type == "ValueError"
            assert exc.error.message
            assert not exc.error.is_timeout and not exc.error.is_crash

    def test_warm_cache_speedup(self, tmp_path):
        specs = [JobSpec.make("fig_point", width_mult=w, wire_length=2,
                              dt=8e-12) for w in (1.0, 2.0, 4.0)]
        cache_dir = tmp_path / "cache"
        t0 = time.perf_counter()
        cold = ParallelRunner(
            jobs=1, cache=ResultCache(cache_dir)).run(specs)
        t_cold = time.perf_counter() - t0
        warm_cache = ResultCache(cache_dir)
        t0 = time.perf_counter()
        warm = ParallelRunner(jobs=1, cache=warm_cache).run(specs)
        t_warm = time.perf_counter() - t0
        assert all(r.cached for r in warm)
        assert warm_cache.hits == len(specs)
        assert pickle.dumps([r.value for r in cold]) == \
            pickle.dumps([r.value for r in warm])
        assert t_cold / t_warm >= 10.0

    def test_default_runner_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        runner = default_runner()
        assert runner.jobs == 3
        assert isinstance(runner.cache, NullCache)
        monkeypatch.delenv("REPRO_NO_CACHE")
        assert not isinstance(default_runner().cache, NullCache)

    def test_default_runner_reads_job_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "2.5")
        assert default_runner().timeout_s == 2.5
        monkeypatch.delenv("REPRO_JOB_TIMEOUT")
        assert default_runner().timeout_s is None

    @pytest.mark.parametrize("value", ["", "nope", "1.5x", "-3", "0"])
    def test_invalid_job_timeout_falls_back_to_none(self, monkeypatch,
                                                    value):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", value)
        assert default_runner().timeout_s is None

    @pytest.mark.parametrize("value", ["", "many", "2.5"])
    def test_invalid_jobs_falls_back_to_serial(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        assert default_runner().jobs == 1


# ---------------------------------------------------------------------------
# In-process LRU layer over the disk cache
# ---------------------------------------------------------------------------

class TestCacheLRU:
    KEY = "ab" * 32

    def test_warm_get_served_from_memory(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, {"v": 1})
        hit, value = cache.get(self.KEY)
        assert hit and value == {"v": 1}
        assert cache.lru_hits == 1
        # Even with the disk entry gone, the LRU still answers.
        cache.path_for(self.KEY).unlink()
        hit, value = cache.get(self.KEY)
        assert hit and value == {"v": 1}
        assert cache.hits == 2 and cache.lru_hits == 2

    def test_lru_hits_are_a_subset_of_hits(self, tmp_path):
        # The external contract (hits counts *every* successful get)
        # must not change when the serving layer does.
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, 42)
        fresh = ResultCache(tmp_path)  # cold LRU, warm disk
        assert fresh.get(self.KEY) == (True, 42)
        assert fresh.hits == 1 and fresh.lru_hits == 0
        assert fresh.get(self.KEY) == (True, 42)
        assert fresh.hits == 2 and fresh.lru_hits == 1

    def test_hits_return_fresh_objects_not_aliases(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, {"rows": [1, 2]})
        _, first = cache.get(self.KEY)
        first["rows"].append(99)
        _, second = cache.get(self.KEY)
        assert second == {"rows": [1, 2]}

    def test_byte_budget_bounds_and_evicts(self, tmp_path):
        value = "x" * 100
        blob_len = len(pickle.dumps(value,
                                    protocol=pickle.HIGHEST_PROTOCOL))
        # Room for two blobs, not three.
        cache = ResultCache(tmp_path, lru_mb=2.5 * blob_len / 2**20)
        keys = [f"{i:02d}" * 32 for i in range(3)]
        for key in keys:
            cache.put(key, value)
        assert cache.lru_bytes() == 2 * blob_len
        # The oldest key fell out of memory but still hits on disk.
        assert cache.get(keys[0]) == (True, value)
        assert cache.lru_hits == 0
        assert cache.get(keys[2]) == (True, value)
        assert cache.lru_hits == 1

    def test_zero_budget_disables_the_layer(self, tmp_path):
        cache = ResultCache(tmp_path, lru_mb=0)
        cache.put(self.KEY, 1)
        assert cache.get(self.KEY) == (True, 1)
        assert cache.lru_hits == 0 and cache.lru_bytes() == 0

    def test_budget_env_parsing(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_LRU_MB", "1")
        assert ResultCache(tmp_path)._lru_limit == 2**20
        monkeypatch.setenv("REPRO_CACHE_LRU_MB", "nope")
        assert ResultCache(tmp_path)._lru_limit == 64 * 2**20

    def test_stats_include_lru_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, 1)
        cache.get(self.KEY)
        assert cache.stats() == {"hits": 1, "misses": 0, "puts": 1,
                                 "lru_hits": 1}


# ---------------------------------------------------------------------------
# Cache maintenance: entries / prune
# ---------------------------------------------------------------------------

class TestCacheMaintenance:
    def test_entries_and_total_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        k1, k2 = "aa" * 32, "bb" * 32
        cache.put(k1, list(range(10)))
        cache.put(k2, "payload")
        entries = cache.entries()
        assert [key for key, _, _ in entries] == sorted([k1, k2])
        assert all(size > 0 and mtime > 0 for _, size, mtime in entries)
        assert cache.total_bytes() == sum(s for _, s, _ in entries)
        assert NullCache().entries() == []

    def test_prune_by_age_spares_fresh_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        old_key, new_key = "aa" * 32, "bb" * 32
        cache.put(old_key, 1)
        cache.put(new_key, 2)
        stale = time.time() - 3600
        os.utime(cache.path_for(old_key), (stale, stale))
        removed, freed = cache.prune(max_age_s=60.0)
        assert removed == 1 and freed > 0
        assert list(cache.keys()) == [new_key]
        # The pruned key is gone from the LRU layer too.
        hit, _ = cache.get(old_key)
        assert not hit

    def test_prune_without_age_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 32, i)
        removed, _ = cache.prune()
        assert removed == 3 and len(cache) == 0
        assert cache.prune() == (0, 0)


# ---------------------------------------------------------------------------
# Scheduler selection (pool= / REPRO_POOL, chunk= / REPRO_CHUNK)
# ---------------------------------------------------------------------------

class TestPoolSelection:
    def test_env_selects_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "per-job")
        assert default_runner().pool == "per-job"
        monkeypatch.setenv("REPRO_POOL", "persistent")
        assert default_runner().pool == "persistent"
        monkeypatch.delenv("REPRO_POOL")
        assert default_runner().pool == "persistent"

    @pytest.mark.parametrize("value", ["", "magic", "PERJOB"])
    def test_invalid_env_falls_back_to_persistent(self, monkeypatch,
                                                  value):
        monkeypatch.setenv("REPRO_POOL", value)
        assert default_runner().pool == "persistent"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "persistent")
        runner = ParallelRunner(pool="per-job", cache=NullCache())
        assert runner.pool == "per-job"

    def test_invalid_explicit_argument_raises(self):
        with pytest.raises(ValueError, match="pool must be one of"):
            ParallelRunner(pool="magic", cache=NullCache())

    def test_chunk_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "7")
        assert default_runner().chunk == 7
        for auto in ("0", "-1", "nope", ""):
            monkeypatch.setenv("REPRO_CHUNK", auto)
            assert default_runner().chunk is None

    def test_chunk_target_scaling(self):
        runner = ParallelRunner(jobs=4, cache=NullCache())
        assert runner._chunk_target(4) == 1
        assert runner._chunk_target(200) == 13  # ceil(200 / (4 * 4))
        assert runner._chunk_target(10**6) == 32  # capped
        fixed = ParallelRunner(jobs=2, cache=NullCache(), chunk=5)
        assert fixed._chunk_target(1000) == 5


# ---------------------------------------------------------------------------
# Shared-memory transport and the pool wire protocol
# ---------------------------------------------------------------------------

class TestShmTransport:
    def test_encode_decode_roundtrip_is_bit_identical(self):
        np = pytest.importorskip("numpy")
        from multiprocessing import shared_memory

        from repro.exp import pool as pool_mod
        arr = np.arange(50_000, dtype=np.float64)
        value = {"a": arr, "nested": [1, (arr * 2.0,)], "s": "text"}
        encoded, names, nbytes = pool_mod.encode_value(value,
                                                       min_bytes=1024)
        assert len(names) == 2
        assert nbytes == 2 * arr.nbytes
        assert isinstance(encoded["a"], pool_mod.ShmRef)
        decoded, got = pool_mod.decode_value(encoded)
        assert got == nbytes
        assert pickle.dumps(decoded) == pickle.dumps(value)
        # Decode unlinks every segment; nothing leaks.
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_small_and_noncontiguous_arrays_stay_inline(self):
        np = pytest.importorskip("numpy")
        from repro.exp import pool as pool_mod
        small = np.arange(4, dtype=np.float64)
        fortran = np.asfortranarray(
            np.arange(10_000, dtype=np.float64).reshape(100, 100))
        strided = np.arange(50_000, dtype=np.float64)[::2]
        encoded, names, nbytes = pool_mod.encode_value(
            [small, fortran, strided], min_bytes=1024)
        assert names == [] and nbytes == 0
        assert encoded[0] is small and encoded[1] is fortran
        assert encoded[2] is strided

    def test_disabled_transport_passes_values_through(self, monkeypatch):
        np = pytest.importorskip("numpy")
        from repro.exp import pool as pool_mod
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        assert pool_mod.shm_min_bytes() is None
        arr = np.arange(50_000, dtype=np.float64)
        encoded, names, nbytes = pool_mod.encode_value(arr)
        assert encoded is arr and names == [] and nbytes == 0

    def test_release_segments_unlinks_orphans(self):
        np = pytest.importorskip("numpy")
        from multiprocessing import shared_memory

        from repro.exp import pool as pool_mod
        arr = np.arange(20_000, dtype=np.float64)
        _, names, _ = pool_mod.encode_value(arr, min_bytes=1024)
        assert names
        pool_mod.release_segments(names)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=names[0])
        pool_mod.release_segments(names)  # idempotent

    def test_worker_loop_protocol_in_thread(self):
        # Drive the worker main loop over a real Pipe from a thread:
        # one ack per chunk, one result per job in chunk order, clean
        # exit on "stop".
        import multiprocessing as mp

        from repro.exp.pool import _pool_worker_main
        parent, child = mp.Pipe(duplex=True)
        worker = threading.Thread(target=_pool_worker_main,
                                  args=(child,), daemon=True)
        worker.start()
        specs = [JobSpec.make("selftest", x=2.0),
                 JobSpec.make("selftest", x=3.0)]
        t_sent = time.monotonic()
        parent.send(("run", None, specs))
        op, t_recv = parent.recv()
        assert op == "ack" and t_recv >= t_sent
        for expected in (4.0, 6.0):
            op, value, seconds, err, spans, metric_rows, shm_bytes = \
                parent.recv()
            assert op == "res" and err is None
            assert value == expected and seconds >= 0
            assert shm_bytes == 0
            assert isinstance(spans, list)
            assert isinstance(metric_rows, list)
        # Failures travel as structured errors, not crashes.
        parent.send(("run", None,
                     [JobSpec.make("selftest", x=1.0, fail=True)]))
        assert parent.recv()[0] == "ack"
        op, value, _, err, _, _, _ = parent.recv()
        assert op == "res" and value is None
        assert err is not None and err.exc_type == "RuntimeError"
        parent.send(("stop",))
        worker.join(5.0)
        assert not worker.is_alive()


# ---------------------------------------------------------------------------
# Determinism: serial flow == flow fanned over the pool
# ---------------------------------------------------------------------------

class TestFlowDeterminism:
    def test_same_seed_identical_bitstream_serial_vs_jobs4(self):
        serial = run_flow(COUNTER_VHDL,
                          FlowOptions(seed=1, use_cache=False))
        specs = [JobSpec.make("flow", vhdl=COUNTER_VHDL, seed=1,
                              use_cache=False) for _ in range(4)]
        runner = ParallelRunner(jobs=4, cache=NullCache())
        for out in runner.run_values(specs):
            assert out["bitstream"] == serial.bitstream
            assert out["placement"] == {
                b: (s.x, s.y, s.sub)
                for b, s in serial.placement.loc.items()}

    def test_different_seed_changes_placement(self):
        a = run_flow(COUNTER_VHDL, FlowOptions(seed=1, use_cache=False))
        b = run_flow(COUNTER_VHDL, FlowOptions(seed=7, use_cache=False))
        assert a.placement.loc != b.placement.loc

    def test_flow_independent_of_hash_seed(self, tmp_path):
        # Cached results are shared across interpreter sessions, so the
        # flow must not depend on PYTHONHASHSEED (set/dict iteration
        # order).  Run it in subprocesses with different hash seeds and
        # require identical bitstream + placement digests.
        import os
        import subprocess
        import sys
        script = tmp_path / "probe.py"
        script.write_text(
            "import hashlib, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.flow.flow import FlowOptions, run_flow\n"
            "from tests.test_flow import COUNTER_VHDL\n"
            "res = run_flow(COUNTER_VHDL,"
            " FlowOptions(seed=1, use_cache=False))\n"
            "h = hashlib.sha256(res.bitstream)\n"
            "h.update(repr(sorted((b, s.x, s.y, s.sub)\n"
            "    for b, s in res.placement.loc.items())).encode())\n"
            "print(h.hexdigest())\n")
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digests = set()
        for hash_seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=os.path.join(repo, "src"))
            out = subprocess.run(
                [sys.executable, str(script), repo],
                capture_output=True, text=True, env=env, check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1
