"""Tests for the placer (SA) and router (PathFinder)."""

import pytest
from dataclasses import replace

from repro.arch import DEFAULT_ARCH, build_rr_graph
from repro.bench import counter, random_logic
from repro.pack import pack_netlist
from repro.place import place, wirelength_cost
from repro.place.placer import CROSSING_FACTOR, _q
from repro.route import route, route_min_channel_width
from repro.synth import optimize_and_map


def packed(net):
    return pack_netlist(optimize_and_map(net, 4).network)


@pytest.fixture(scope="module")
def counter_cn():
    return packed(counter(8))


@pytest.fixture(scope="module")
def counter_placed(counter_cn):
    return place(counter_cn, DEFAULT_ARCH, seed=5)


class TestPlacer:
    def test_every_block_placed_once(self, counter_cn, counter_placed):
        pl = counter_placed
        blocks = ([c.name for c in counter_cn.clusters]
                  + [f"pi:{p}" for p in counter_cn.inputs]
                  + [f"po:{p}" for p in counter_cn.outputs])
        assert sorted(pl.loc) == sorted(blocks)
        keys = [s.key() for s in pl.loc.values()]
        assert len(keys) == len(set(keys))   # no overlaps

    def test_clbs_on_clb_sites_ios_on_perimeter(self, counter_cn,
                                                counter_placed):
        pl = counter_placed
        size = pl.grid_size
        for block, site in pl.loc.items():
            if block.startswith(("pi:", "po:")):
                assert site.kind == "io"
                assert (site.x in (0, size + 1)
                        or site.y in (0, size + 1))
            else:
                assert site.kind == "clb"
                assert 1 <= site.x <= size and 1 <= site.y <= size

    def test_cost_matches_recompute(self, counter_placed):
        pl = counter_placed
        assert pl.cost == pytest.approx(
            wirelength_cost(pl.loc, pl.nets), rel=1e-9)

    def test_annealing_beats_random(self, counter_cn):
        import random
        from repro.arch.fabric import FabricGrid
        pl = place(counter_cn, DEFAULT_ARCH, seed=7)
        # Average random placement cost on the same grid.
        grid = FabricGrid(DEFAULT_ARCH, pl.grid_size)
        rng = random.Random(0)
        costs = []
        for _ in range(15):
            clb_sites = grid.clb_sites()
            io_sites = grid.io_sites()
            rng.shuffle(clb_sites)
            rng.shuffle(io_sites)
            loc = {}
            clbs = [b for b in pl.loc if not b.startswith(("pi:",
                                                           "po:"))]
            ios = [b for b in pl.loc if b.startswith(("pi:", "po:"))]
            for b, s in zip(clbs, clb_sites):
                loc[b] = s
            for b, s in zip(ios, io_sites):
                loc[b] = s
            costs.append(wirelength_cost(loc, pl.nets))
        assert pl.cost < sum(costs) / len(costs)

    def test_determinism(self, counter_cn):
        a = place(counter_cn, DEFAULT_ARCH, seed=9)
        b = place(counter_cn, DEFAULT_ARCH, seed=9)
        assert a.cost == b.cost
        assert {k: v.key() for k, v in a.loc.items()} == \
            {k: v.key() for k, v in b.loc.items()}

    def test_q_factor_monotone(self):
        vals = [_q(n) for n in range(3, 60)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))
        assert CROSSING_FACTOR[4] == pytest.approx(1.0828)

    def test_grid_too_small_rejected(self, counter_cn):
        with pytest.raises(ValueError):
            place(counter_cn, DEFAULT_ARCH, grid_size=1)


class TestRouter:
    def test_routes_counter(self, counter_placed):
        g = build_rr_graph(DEFAULT_ARCH, counter_placed.grid_size)
        rr = route(counter_placed, g)
        assert rr.success
        assert len(rr.trees) == len(counter_placed.nets)

    def test_trees_are_connected(self, counter_placed):
        g = build_rr_graph(DEFAULT_ARCH, counter_placed.grid_size)
        rr = route(counter_placed, g)
        for name, tree in rr.trees.items():
            # Walking up from every node must reach the source.
            for node in tree.parents:
                seen = set()
                cur = node
                while cur != -1:
                    assert cur not in seen
                    seen.add(cur)
                    cur = tree.parents[cur]
                assert tree.source in seen

    def test_trees_reach_all_sinks(self, counter_placed):
        g = build_rr_graph(DEFAULT_ARCH, counter_placed.grid_size)
        rr = route(counter_placed, g)
        for name, net in counter_placed.nets.items():
            tree = rr.trees[name]
            for b in net["sinks"]:
                sink = g.sink_of(counter_placed.loc[b])
                assert sink in tree.parents

    def test_no_overuse_on_success(self, counter_placed):
        g = build_rr_graph(DEFAULT_ARCH, counter_placed.grid_size)
        rr = route(counter_placed, g)
        occ = {}
        for tree in rr.trees.values():
            for node in tree.parents:
                occ[node] = occ.get(node, 0) + 1
        for node, n in occ.items():
            if g.nodes[node].kind in ("CHANX", "CHANY", "IPIN",
                                      "OPIN"):
                assert n <= 1, f"node {node} overused"

    def test_min_channel_width_search(self, counter_placed):
        w, rr, g = route_min_channel_width(counter_placed,
                                           DEFAULT_ARCH, w_max=32)
        assert rr.success
        assert 1 <= w <= 32
        # One less track must fail (minimality), unless already at 2.
        if w > 2:
            from dataclasses import replace
            a = replace(DEFAULT_ARCH, channel_width=w - 1)
            g2 = build_rr_graph(a, counter_placed.grid_size)
            try:
                r2 = route(counter_placed, g2, max_iterations=30)
                assert not r2.success
            except RuntimeError:
                pass    # disconnected at tiny width: also a failure

    def test_wirelength_positive(self, counter_placed):
        g = build_rr_graph(DEFAULT_ARCH, counter_placed.grid_size)
        rr = route(counter_placed, g)
        assert rr.total_wirelength(g) > 0

    def test_larger_circuit_routes(self):
        cn = packed(random_logic("r", n_pi=10, n_po=6, n_nodes=80,
                                 seed=2))
        pl = place(cn, DEFAULT_ARCH, seed=2)
        g = build_rr_graph(DEFAULT_ARCH, pl.grid_size)
        rr = route(pl, g)
        assert rr.success
