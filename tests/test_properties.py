"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *arbitrary* inputs, not just the curated
cases: format round-trips, minimisation semantics, mapping equivalence,
packing legality, bitstream codec identity.
"""

import pickle
import random
import tempfile

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.arch import ArchParams, generate_arch_file, parse_arch_file
from repro.bench import random_logic
from repro.circuit.technology import STM018
from repro.exp import JobSpec, ParallelRunner, ResultCache
from repro.exp.tasks import task
from repro.netlist.blif import parse_blif, write_blif
from repro.netlist.logic import Cube, LogicNetwork
from repro.pack import pack_netlist
from repro.synth import optimize_and_map
from repro.synth.espresso import minimize_cover


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def covers(draw, max_inputs=5, max_cubes=6):
    n = draw(st.integers(1, max_inputs))
    cubes = draw(st.lists(
        st.text(alphabet="01-", min_size=n, max_size=n),
        min_size=0, max_size=max_cubes))
    return n, cubes


@st.composite
def small_networks(draw):
    seed = draw(st.integers(0, 10 ** 6))
    n_pi = draw(st.integers(3, 8))
    n_nodes = draw(st.integers(5, 35))
    registered = draw(st.booleans())
    return random_logic("prop", n_pi=n_pi, n_po=min(4, n_nodes),
                        n_nodes=n_nodes, seed=seed,
                        registered=registered)


def _truth_set(cover, n):
    out = set()
    for m in range(1 << n):
        mt = "".join(str((m >> i) & 1) for i in range(n))
        if any(Cube.covers(c, mt) for c in cover):
            out.add(m)
    return out


# ---------------------------------------------------------------------------
# Espresso
# ---------------------------------------------------------------------------

class TestEspressoProperties:
    @settings(max_examples=100, deadline=None)
    @given(covers())
    def test_minimise_preserves_truth_table(self, nc):
        n, cubes = nc
        out = minimize_cover(cubes, n)
        assert _truth_set(out, n) == _truth_set(cubes, n)

    @settings(max_examples=50, deadline=None)
    @given(covers())
    def test_minimise_is_idempotent(self, nc):
        n, cubes = nc
        once = minimize_cover(cubes, n)
        twice = minimize_cover(once, n)
        assert _truth_set(once, n) == _truth_set(twice, n)
        assert len(twice) <= len(once)

    @settings(max_examples=50, deadline=None)
    @given(covers())
    def test_no_cube_is_contained_in_another(self, nc):
        n, cubes = nc
        out = minimize_cover(cubes, n)
        for i, a in enumerate(out):
            for j, b in enumerate(out):
                if i != j:
                    assert not Cube.contains(a, b)


# ---------------------------------------------------------------------------
# BLIF round-trip
# ---------------------------------------------------------------------------

class TestBlifProperties:
    @settings(max_examples=25, deadline=None)
    @given(small_networks())
    def test_roundtrip_behaviour(self, net):
        net2 = parse_blif(write_blif(net))
        rng = random.Random(0)
        vecs = [{i: rng.randint(0, 1) for i in net.inputs}
                for _ in range(8)]
        assert net.simulate(vecs) == net2.simulate(vecs)

    @settings(max_examples=25, deadline=None)
    @given(small_networks())
    def test_roundtrip_stats(self, net):
        net2 = parse_blif(write_blif(net))
        assert net2.stats() == net.stats()


# ---------------------------------------------------------------------------
# Mapping and packing
# ---------------------------------------------------------------------------

class TestMapPackProperties:
    @settings(max_examples=12, deadline=None)
    @given(small_networks(), st.integers(3, 6))
    def test_mapping_equivalence_any_k(self, net, k):
        res = optimize_and_map(net, k)
        assert res.network.is_k_feasible(k)
        rng = random.Random(1)
        vecs = [{i: rng.randint(0, 1) for i in net.inputs}
                for _ in range(10)]
        assert net.simulate(vecs) == res.network.simulate(vecs)

    @settings(max_examples=10, deadline=None)
    @given(small_networks(), st.integers(2, 8), st.integers(6, 18))
    def test_packing_always_legal(self, net, n, i):
        assume(i >= 4)
        mapped = optimize_and_map(net, 4).network
        cn = pack_netlist(mapped, n=n, i=i, k=4)
        for c in cn.clusters:
            assert len(c.bles) <= n
            assert len(c.external_inputs()) <= i
        packed = sorted(b.name for c in cn.clusters for b in c.bles)
        assert len(packed) == len(set(packed))


# ---------------------------------------------------------------------------
# DUTYS round-trip
# ---------------------------------------------------------------------------

class TestArchFileProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 10), st.integers(3, 6), st.integers(4, 40),
           st.sampled_from([1.0, 4.0, 10.0, 16.0, 64.0]))
    def test_roundtrip(self, n, k, w, sw):
        a = ArchParams(n=n, k=k, channel_width=w, switch_width_mult=sw)
        b = parse_arch_file(generate_arch_file(a))
        assert (b.n, b.k, b.channel_width) == (n, k, w)
        assert b.switch_width_mult == sw
        assert b.inputs_per_clb == a.inputs_per_clb


# ---------------------------------------------------------------------------
# Experiment-engine result cache
# ---------------------------------------------------------------------------

@task("_prop_echo")
def _prop_echo(**params):
    """Test-only job kind: its result is its own parameter dict."""
    return dict(params)


#: JSON-safe scalars as they appear in experiment row dicts.
_scalars = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.integers(-10 ** 9, 10 ** 9),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)

_row_dicts = st.lists(
    st.dictionaries(st.text(min_size=1, max_size=10), _scalars,
                    max_size=5),
    max_size=5)

_spec_params = st.dictionaries(
    st.text(alphabet="abcdefghij_", min_size=1, max_size=8),
    _scalars, max_size=5)


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(_spec_params)
    def test_same_spec_same_key(self, params):
        a = JobSpec.make("fig_point", tech=STM018, **params)
        b = JobSpec.make("fig_point", tech=STM018, **params)
        assert a.key() == b.key()

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1e-6, max_value=0.5,
                     allow_nan=False))
    def test_perturbed_technology_param_misses(self, eps):
        base = JobSpec.make("fig_point", width_mult=2.0, tech=STM018)
        perturbed = JobSpec.make(
            "fig_point", width_mult=2.0,
            tech=STM018.scaled(vdd=STM018.vdd * (1.0 + eps)))
        assert base.key() != perturbed.key()

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1e-9, max_value=100.0,
                     allow_nan=False))
    def test_perturbed_spec_field_misses(self, delta):
        base = JobSpec.make("fig_point", width_mult=2.0, wire_length=4)
        moved = JobSpec.make("fig_point", width_mult=2.0 + delta,
                             wire_length=4)
        assert base.key() != moved.key()

    @settings(max_examples=25, deadline=None)
    @given(_spec_params)
    def test_same_spec_hits_with_bit_identical_result(self, params):
        spec = JobSpec.make("_prop_echo", **params)
        with tempfile.TemporaryDirectory() as d:
            runner = ParallelRunner(jobs=1, cache=ResultCache(d))
            first, = runner.run([spec])
            second, = runner.run([spec])
            assert not first.cached and second.cached
            assert pickle.dumps(first.value) == pickle.dumps(
                second.value)

    @settings(max_examples=25, deadline=None)
    @given(_row_dicts)
    def test_disk_roundtrip_preserves_row_dicts(self, rows):
        spec = JobSpec.make("_prop_echo", n=len(rows))
        key = spec.key()
        with tempfile.TemporaryDirectory() as d:
            ResultCache(d).put(key, rows)
            hit, back = ResultCache(d).get(key)
        assert hit
        assert pickle.dumps(back) == pickle.dumps(rows)


# ---------------------------------------------------------------------------
# Bitstream codec
# ---------------------------------------------------------------------------

class TestBitstreamProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_pack_unpack_identity_random_configs(self, seed):
        from repro.bitgen.bitstream import (SwitchBoxConfig, _empty_clb,
                                            pack_bitstream,
                                            unpack_bitstream,
                                            BitstreamConfig, IoConfig)
        from repro.arch import DEFAULT_ARCH, FabricGrid

        rng = random.Random(seed)
        arch = DEFAULT_ARCH
        size = rng.randint(1, 3)
        cfg = BitstreamConfig(arch=arch, size=size)
        w = arch.channel_width
        for x in range(1, size + 1):
            for y in range(1, size + 1):
                clb = _empty_clb(arch)
                for j in range(arch.n):
                    clb.lut_bits[j] = [rng.randint(0, 1)
                                       for _ in range(16)]
                    clb.use_ff[j] = rng.randint(0, 1)
                    clb.xbar_sel[j] = [rng.randint(0, 31)
                                       for _ in range(arch.k)]
                clb.clb_clk_en = rng.randint(0, 1)
                clb.out_src = [rng.randint(0, 31)
                               for _ in range(arch.clb_outputs)]
                cfg.clbs[(x, y)] = clb
        for cx in range(size + 1):
            for cy in range(size + 1):
                cfg.sbs[(cx, cy)] = SwitchBoxConfig(
                    [[rng.randint(0, 1) for _ in range(6)]
                     for _ in range(w)])
        for s in FabricGrid(arch, size).io_sites():
            cfg.ios[(s.x, s.y, s.sub)] = IoConfig(
                rng.randint(0, 2),
                [rng.randint(0, 1) for _ in range(w)])

        back = unpack_bitstream(pack_bitstream(cfg), arch)
        assert back.clbs == cfg.clbs
        assert back.sbs == cfg.sbs
        assert back.ios == cfg.ios
