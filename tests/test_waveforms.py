"""Tests for PWL stimulus construction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuit.waveforms import (PWL, clock, dc, fig4_stimulus,
                                     pulse_train, step)


class TestPWL:
    def test_dc(self):
        w = dc(1.8)
        assert w(0.0) == 1.8
        assert w(1e-6) == 1.8

    def test_step_interpolation(self):
        w = step(1e-9, 0.0, 1.8, t_rise=100e-12)
        assert w(0.5e-9) == 0.0
        assert w(1.05e-9) == pytest.approx(0.9)
        assert w(2e-9) == 1.8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PWL((0.0, 1.0), (0.0,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PWL((), ())

    def test_unordered_times_rejected(self):
        with pytest.raises(ValueError):
            PWL((1.0, 0.0), (0.0, 1.0))

    def test_sample_matches_scalar(self):
        w = step(1e-9, 0.0, 1.8)
        t = np.linspace(0, 3e-9, 50)
        s = w.sample(t)
        for ti, si in zip(t, s):
            assert si == pytest.approx(float(w(ti)))

    @given(st.floats(0.1e-9, 10e-9), st.floats(0.1, 3.0))
    def test_step_reaches_target(self, t_step, v1):
        w = step(t_step, 0.0, v1)
        assert w(t_step + 1e-9) == pytest.approx(v1)


class TestClock:
    def test_clock_levels(self):
        w = clock(2e-9, 2, 1.8)
        # high in the middle of the first half period
        assert w(0.5e-9) == pytest.approx(1.8)
        assert w(1.5e-9) == pytest.approx(0.0)
        assert w(2.5e-9) == pytest.approx(1.8)

    def test_clock_edge_count(self):
        w = clock(2e-9, 4, 1.8)
        t = np.linspace(0, 8.5e-9, 20000)
        v = w.sample(t)
        above = v > 0.9
        edges = np.count_nonzero(above[1:] != above[:-1])
        assert edges == 8    # 4 rising + 4 falling

    def test_pulse_train_spacing_violation(self):
        with pytest.raises(ValueError):
            pulse_train([(1e-9, 1.8), (0.5e-9, 0.0)])


class TestFig4:
    def test_stimulus_shapes(self):
        clk, data, t_end = fig4_stimulus(1.8)
        assert t_end > 10e-9
        t = np.linspace(0, t_end, 5000)
        vc = clk.sample(t)
        vd = data.sample(t)
        # both rails are exercised on both signals
        assert vc.max() == pytest.approx(1.8, abs=1e-9)
        assert vc.min() == pytest.approx(0.0, abs=1e-9)
        assert vd.max() == pytest.approx(1.8, abs=1e-9)
        assert vd.min() == pytest.approx(0.0, abs=1e-9)

    def test_data_changes_before_each_capturing_edge(self):
        # Every data edge must precede a clock edge (setup respected).
        clk, data, t_end = fig4_stimulus(1.8, period=2e-9)
        t = np.linspace(0, t_end, 40000)
        vd = data.sample(t)
        vc = clk.sample(t)
        d_above = vd > 0.9
        c_above = vc > 0.9
        d_edges = t[1:][d_above[1:] != d_above[:-1]]
        c_edges = t[1:][c_above[1:] != c_above[:-1]]
        for de in d_edges[::2]:
            after = c_edges[c_edges > de]
            assert after.size > 0
            assert after[0] - de > 0.05e-9
