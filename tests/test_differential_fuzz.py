"""Differential fuzzing: random netlists through the complete flow.

Each case seeds a random multi-level logic network, pushes it through
the *entire* flow -- technology mapping, packing, placement, routing,
bitstream generation -- then boots the device simulator from nothing
but the unpacked bitstream and compares its cycle-by-cycle outputs
against a logic-level simulation of the ORIGINAL source network.  Any
divergence pins a bug somewhere between synthesis and configuration
decode, which is exactly the class of bug unit tests on individual
stages cannot see.

The sweep is marked ``slow`` (~20 flows); the fast suite runs a
two-seed smoke version of the same oracle.
"""

import random

import pytest

from repro.arch import ArchParams
from repro.bench import random_logic
from repro.bitgen import unpack_bitstream
from repro.bitgen.devicesim import (DeviceSimulator,
                                    pad_map_from_placement)
from repro.flow.flow import FlowOptions, run_flow_from_logic

N_CASES = 20


def _case_params(seed: int) -> dict:
    """Deterministic per-seed shape of the fuzzed network."""
    rng = random.Random(0xF0 + seed)
    return {
        "n_pi": rng.randint(4, 9),
        "n_po": rng.randint(2, 5),
        "n_nodes": rng.randint(12, 45),
        "max_fanin": rng.randint(2, 5),
        "registered": seed % 3 != 0,
    }


def _run_case(seed: int) -> None:
    params = _case_params(seed)
    net = random_logic(f"fuzz{seed}", seed=seed, **params)
    res = run_flow_from_logic(
        net, FlowOptions(seed=1 + seed % 4, place_effort=0.3,
                         use_cache=False))
    assert res.routing is not None and res.routing.success

    # Boot the device from the bitstream alone.
    cfg = unpack_bitstream(res.bitstream, res.placement.arch)
    dev = DeviceSimulator(cfg, pad_map_from_placement(res.placement))

    rng = random.Random(1000 + seed)
    vecs = [{pi: rng.randint(0, 1) for pi in net.inputs}
            for _ in range(12)]
    got = dev.run(vecs)
    want = net.simulate(vecs)
    assert got == want, (
        f"device diverges from source network for seed {seed} "
        f"({params}): first mismatch at cycle "
        f"{next(i for i, (g, w) in enumerate(zip(got, want)) if g != w)}")


def test_differential_smoke():
    """Two-seed fast version so every push exercises the oracle."""
    for seed in (0, 1):
        _run_case(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(N_CASES))
def test_differential_fuzz(seed):
    _run_case(seed)
