"""Differential fuzzing: random netlists through the complete flow.

Each case seeds a random multi-level logic network, pushes it through
the *entire* flow -- technology mapping, packing, placement, routing,
bitstream generation -- then checks THREE independent oracles against
a logic-level simulation of the ORIGINAL source network:

1. the device simulator booted from nothing but the unpacked
   bitstream (interprets the configuration cycle by cycle);
2. the disassembler's recovered netlist, simulated at logic level
   (lifts the configuration back to a LogicNetwork first);
3. byte-exact ``unpack -> repack`` of the bitstream itself.

Any divergence pins a bug somewhere between synthesis and
configuration decode, which is exactly the class of bug unit tests on
individual stages cannot see -- and the two decoders are independent
implementations, so a shared-misreading escape needs the same bug
twice.

The sweep is marked ``slow`` (~20 flows); the fast suite runs a
two-seed smoke version of the same oracle.
"""

import random

import pytest

from repro.arch import ArchParams
from repro.bench import random_logic
from repro.bitgen import disassemble, pack_bitstream, unpack_bitstream
from repro.bitgen.devicesim import (DeviceSimulator,
                                    pad_map_from_placement)
from repro.flow.flow import FlowOptions, run_flow_from_logic

N_CASES = 20


def _case_params(seed: int) -> dict:
    """Deterministic per-seed shape of the fuzzed network."""
    rng = random.Random(0xF0 + seed)
    return {
        "n_pi": rng.randint(4, 9),
        "n_po": rng.randint(2, 5),
        "n_nodes": rng.randint(12, 45),
        "max_fanin": rng.randint(2, 5),
        "registered": seed % 3 != 0,
    }


def _run_case(seed: int) -> None:
    params = _case_params(seed)
    net = random_logic(f"fuzz{seed}", seed=seed, **params)
    res = run_flow_from_logic(
        net, FlowOptions(seed=1 + seed % 4, place_effort=0.3,
                         use_cache=False))
    assert res.routing is not None and res.routing.success

    # Oracle 1: boot the device from the bitstream alone.
    cfg = unpack_bitstream(res.bitstream, res.placement.arch)
    dev = DeviceSimulator(cfg, pad_map_from_placement(res.placement))

    rng = random.Random(1000 + seed)
    vecs = [{pi: rng.randint(0, 1) for pi in net.inputs}
            for _ in range(12)]
    got = dev.run(vecs)
    want = net.simulate(vecs)
    assert got == want, (
        f"device diverges from source network for seed {seed} "
        f"({params}): first mismatch at cycle "
        f"{next(i for i, (g, w) in enumerate(zip(got, want)) if g != w)}")

    # Oracle 2: disassemble the bitstream to a netlist and simulate it.
    dis = disassemble(res.bitstream, res.placement.arch,
                      pad_map=pad_map_from_placement(res.placement))
    recovered = dis.network.simulate(vecs)
    assert recovered == want, (
        f"disassembled netlist diverges from source network for seed "
        f"{seed} ({params}): first mismatch at cycle "
        f"{next(i for i, (g, w) in enumerate(zip(recovered, want)) if g != w)}")

    # Oracle 3: unpack -> repack must be byte-for-byte lossless.
    assert pack_bitstream(cfg) == res.bitstream, (
        f"unpack->repack is not byte-identical for seed {seed}")


def test_differential_smoke():
    """Two-seed fast version so every push exercises the oracle."""
    for seed in (0, 1):
        _run_case(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(N_CASES))
def test_differential_fuzz(seed):
    _run_case(seed)
