"""Tests for the synthetic benchmark circuit generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import (alu_slice, counter, crc8, gray_counter, lfsr,
                         mcnc_class_suite, parity_tree, random_logic,
                         shift_register)


class TestCounter:
    def test_counts(self):
        net = counter(4)
        out = net.simulate([{"en": 1}] * 10)
        vals = [sum(o[f"out{i}"] << i for i in range(4)) for o in out]
        assert vals == [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]

    def test_enable_freezes(self):
        net = counter(4)
        out = net.simulate([{"en": 1}] * 3 + [{"en": 0}] * 3)
        vals = [sum(o[f"out{i}"] << i for i in range(4)) for o in out]
        assert vals == [0, 1, 2, 3, 3, 3]

    def test_wraps(self):
        net = counter(2)
        out = net.simulate([{"en": 1}] * 6)
        vals = [sum(o[f"out{i}"] << i for i in range(2)) for o in out]
        assert vals == [0, 1, 2, 3, 0, 1]


class TestShiftRegister:
    def test_latency(self):
        net = shift_register(5)
        vecs = [{"sin": 1}] + [{"sin": 0}] * 7
        out = net.simulate(vecs)
        sout = [o["sout"] for o in out]
        # The 1 appears at the output after 5 cycles.
        assert sout == [0, 0, 0, 0, 0, 1, 0, 0]


class TestLfsr:
    def test_nonzero_cycle(self):
        net = lfsr(6, (0, 4))
        # Seed with a single 1, then free-run.
        vecs = [{"seed_in": 1}] + [{"seed_in": 0}] * 40
        out = net.simulate(vecs)
        states = [tuple(o[f"out{i}"] for i in range(6)) for o in out]
        assert any(any(s) for s in states[2:])  # it runs
        assert len(set(states[2:])) > 5          # and changes state

    def test_bad_tap(self):
        with pytest.raises(ValueError):
            lfsr(4, (0, 9))


class TestCrc8:
    def test_differs_on_input_streams(self):
        net = crc8()
        # One flush cycle so the final datum reaches the register file
        # (outputs are sampled before the latch update).
        a = net.simulate([{"din": b}
                          for b in (1, 0, 1, 1, 0, 0, 1, 0, 0)])
        b = net.simulate([{"din": b}
                          for b in (1, 0, 1, 1, 0, 0, 1, 1, 0)])
        assert a[-1] != b[-1]


class TestAlu:
    @pytest.mark.parametrize("op1,op0,fn", [
        (0, 0, lambda a, b: (a + b) & 0xF),
        (0, 1, lambda a, b: a & b),
        (1, 0, lambda a, b: a | b),
        (1, 1, lambda a, b: a ^ b),
    ])
    def test_ops(self, op1, op0, fn):
        net = alu_slice(4)
        for a, b in [(3, 5), (9, 12), (15, 1), (0, 0)]:
            vec = {"op0": op0, "op1": op1}
            vec.update({f"a{i}": (a >> i) & 1 for i in range(4)})
            vec.update({f"b{i}": (b >> i) & 1 for i in range(4)})
            out = net.simulate([vec])[0]
            got = sum(out[f"y{i}"] << i for i in range(4))
            assert got == fn(a, b), (op1, op0, a, b)

    def test_carry_out(self):
        net = alu_slice(4)
        vec = {"op0": 0, "op1": 0}
        vec.update({f"a{i}": 1 for i in range(4)})
        vec.update({f"b{i}": (1 if i == 0 else 0) for i in range(4)})
        assert net.simulate([vec])[0]["cout"] == 1


class TestParityAndGray:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 16 - 1))
    def test_parity(self, x):
        net = parity_tree(16)
        vec = {f"i{k}": (x >> k) & 1 for k in range(16)}
        assert net.simulate([vec])[0]["parity"] == bin(x).count("1") % 2

    def test_gray_single_bit_changes(self):
        net = gray_counter(4)
        out = net.simulate([{"en": 1}] * 12)
        codes = [tuple(o[f"out{i}"] for i in range(4)) for o in out]
        for a, b in zip(codes, codes[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1


class TestRandomLogic:
    def test_deterministic(self):
        a = random_logic("r", seed=5)
        b = random_logic("r", seed=5)
        vecs = [{f"pi{i}": (v >> i) & 1 for i in range(10)}
                for v in range(16)]
        assert a.simulate(vecs) == b.simulate(vecs)

    def test_seeds_differ(self):
        a = random_logic("r", seed=5)
        b = random_logic("r", seed=6)
        vecs = [{f"pi{i}": (v >> i) & 1 for i in range(10)}
                for v in range(32)]
        assert a.simulate(vecs) != b.simulate(vecs)

    def test_registered_variant_has_latches(self):
        net = random_logic("r", seed=1, registered=True)
        assert net.latches


class TestSuite:
    def test_all_validate(self):
        for net in mcnc_class_suite():
            net.validate()

    def test_names_unique(self):
        names = [n.name for n in mcnc_class_suite()]
        assert len(names) == len(set(names))
