"""Tests for BLE formation and cluster packing (T-VPack role)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import counter, random_logic, shift_register
from repro.netlist.logic import LogicNetwork
from repro.pack import form_bles, pack_netlist
from repro.pack.cluster import Cluster
from repro.pack.ble import BLE
from repro.synth import optimize_and_map


def mapped(net, k=4):
    return optimize_and_map(net, k).network


class TestBleFormation:
    def test_lut_ff_pairing(self):
        # d0 feeds only latch q0 -> must be absorbed into one BLE.
        net = mapped(counter(4))
        bles = form_bles(net)
        paired = [b for b in bles if b.lut and b.latch]
        assert len(paired) >= 1
        for b in paired:
            assert b.output == b.latch.output

    def test_no_pairing_when_lut_has_other_fanout(self):
        net = LogicNetwork("t")
        net.add_input("a")
        net.add_node("f", ["a"], ["1"])
        net.add_latch("f", "q", control="clk")
        net.add_node("g", ["f"], ["0"])    # second reader of f
        net.add_output("g")
        net.add_output("q")
        bles = form_bles(net)
        by_name = {b.name: b for b in bles}
        assert by_name["f"].latch is None
        assert any(b.lut is None and b.latch is not None for b in bles)

    def test_lone_latches_get_flowthrough_bles(self):
        net = mapped(shift_register(8))
        bles = form_bles(net)
        lone = [b for b in bles if b.lut is None]
        # Shift chain latches (except possibly the one paired with the
        # output LUT) are lone.
        assert len(lone) >= 7

    def test_rejects_unmapped_network(self):
        net = LogicNetwork("t")
        for i in range(6):
            net.add_input(f"i{i}")
        net.add_node("f", [f"i{k}" for k in range(6)], ["111111"])
        net.add_output("f")
        with pytest.raises(ValueError):
            form_bles(net, k=4)


class TestCluster:
    def _ble(self, name, inputs, output, clock=None):
        return BLE(name=name, lut=name, latch=None, inputs=inputs,
                   output=output, clock=clock)

    def test_capacity_limit(self):
        c = Cluster("c", n=2, i=10)
        c.add(self._ble("b1", ["x"], "o1"))
        c.add(self._ble("b2", ["y"], "o2"))
        assert not c.can_add(self._ble("b3", ["z"], "o3"))

    def test_input_budget(self):
        c = Cluster("c", n=5, i=3)
        c.add(self._ble("b1", ["a", "b", "c"], "o1"))
        # Adding a BLE with 2 fresh inputs would exceed I=3.
        assert not c.can_add(self._ble("b2", ["d", "e"], "o2"))
        # But one whose inputs are already present is fine.
        assert c.can_add(self._ble("b3", ["a", "b"], "o3"))

    def test_internal_feedback_is_free(self):
        c = Cluster("c", n=5, i=2)
        c.add(self._ble("b1", ["a", "b"], "o1"))
        # o1 is generated inside the cluster: costs no input.
        assert c.can_add(self._ble("b2", ["o1", "a"], "o2"))

    def test_single_clock_constraint(self):
        c = Cluster("c", n=5, i=10)
        c.add(self._ble("b1", ["a"], "o1", clock="clk1"))
        assert not c.can_add(self._ble("b2", ["b"], "o2", clock="clk2"))
        assert c.can_add(self._ble("b3", ["b"], "o3", clock="clk1"))

    def test_add_infeasible_raises(self):
        c = Cluster("c", n=1, i=1)
        c.add(self._ble("b1", ["a"], "o1"))
        with pytest.raises(ValueError):
            c.add(self._ble("b2", ["b"], "o2"))

    def test_attraction_counts_shared_nets(self):
        c = Cluster("c", n=5, i=10)
        c.add(self._ble("b1", ["a", "b"], "o1"))
        assert c.attraction(self._ble("b2", ["a", "o1"], "o2")) == 2
        assert c.attraction(self._ble("b3", ["z"], "o3")) == 0


class TestPackNetlist:
    def test_constraints_respected(self):
        net = mapped(random_logic("r", n_pi=10, n_po=5, n_nodes=60,
                                  seed=4))
        cn = pack_netlist(net, n=5, i=12, k=4)
        for c in cn.clusters:
            assert len(c.bles) <= 5
            assert len(c.external_inputs()) <= 12

    def test_all_bles_packed_exactly_once(self):
        net = mapped(counter(8))
        bles = form_bles(net)
        cn = pack_netlist(net)
        packed = [b.name for c in cn.clusters for b in c.bles]
        assert sorted(packed) == sorted(b.name for b in bles)

    def test_nets_have_single_driver(self):
        net = mapped(counter(8))
        cn = pack_netlist(net)
        nets = cn.nets()
        for name, info in nets.items():
            assert info["driver"]
            assert info["sinks"]

    def test_cluster_internal_nets_excluded(self):
        net = mapped(counter(4))
        cn = pack_netlist(net)
        nets = cn.nets()
        for c in cn.clusters:
            internal = c.internal_outputs()
            for netname, info in nets.items():
                if netname in internal and info["driver"] == c.name:
                    # Listed only because someone outside reads it.
                    assert any(s != c.name for s in info["sinks"])

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 100))
    def test_random_networks_pack_legally(self, seed):
        net = mapped(random_logic("r", n_pi=8, n_po=4, n_nodes=30,
                                  seed=seed))
        cn = pack_netlist(net)
        for c in cn.clusters:
            assert len(c.bles) <= cn.n
            assert len(c.external_inputs()) <= cn.i
            clocks = {b.clock for b in c.bles if b.clock}
            assert len(clocks) <= 1

    def test_eq1_supports_high_utilization(self):
        # With I from Eq. 1, utilisation of non-trailing clusters
        # should be high for a well-connected circuit.
        net = mapped(random_logic("r", n_pi=12, n_po=6, n_nodes=150,
                                  seed=11))
        cn = pack_netlist(net, n=5, i=12, k=4)
        assert cn.utilization() > 0.6
