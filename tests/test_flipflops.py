"""Tests for the DETFF variants (functional + Table 1 properties)."""

import numpy as np
import pytest

from repro.circuit.flipflops import DETFF_VARIANTS, dff_setff
from repro.circuit.metrics import crossing_times
from repro.circuit.network import Circuit
from repro.circuit.simulator import simulate
from repro.circuit.waveforms import clock, fig4_stimulus, pulse_train

VDD = 1.8


def _run_ff(builder, clkw, dataw, t_end, dt=2e-12):
    ckt = Circuit()
    d, clk, q = ckt.node("d"), ckt.node("clk"), ckt.node("q")
    builder(ckt, d, clk, q, "ff")
    ckt.capacitor(q, 1.5e-15)
    ckt.voltage_source(clk, clkw)
    ckt.voltage_source(d, dataw)
    return simulate(ckt, t_end, dt=dt)


def _check_capture(res, *, edges="both"):
    """Q must equal D-at-edge shortly after each clock edge."""
    t, vq, vd, vc = res.time, res.v("q"), res.v("d"), res.v("clk")
    th = VDD / 2
    for te in crossing_times(t, vc, th, edges):
        i0 = np.searchsorted(t, te - 20e-12)
        i1 = min(np.searchsorted(t, te + 800e-12), len(t) - 1)
        assert (vd[i0] > th) == (vq[i1] > th), \
            f"capture failed at t={te * 1e9:.2f} ns"


@pytest.mark.parametrize("name", list(DETFF_VARIANTS))
class TestDetffFunction:
    def test_captures_on_both_edges(self, name):
        clkw, dataw, t_end = fig4_stimulus(VDD)
        res = _run_ff(DETFF_VARIANTS[name], clkw, dataw, t_end)
        _check_capture(res, edges="both")

    def test_holds_value_when_data_idle(self, name):
        # Constant data: Q must settle to it and stay there.
        clkw = clock(2e-9, 4, VDD, t_start=0.5e-9)
        dataw = pulse_train([(0.1e-9, VDD)])
        res = _run_ff(DETFF_VARIANTS[name], clkw, dataw, 8.5e-9)
        t, vq = res.time, res.v("q")
        late = vq[np.searchsorted(t, 2.0e-9):]
        assert late.min() > 0.8 * VDD


class TestSingleEdgeReference:
    def test_setff_captures_on_rising_only(self):
        clkw = clock(2e-9, 4, VDD, t_start=0.5e-9)
        # Data high before the first rising edge, low before the first
        # falling edge: Q should follow only rising-edge values.
        dataw = pulse_train([(0.1e-9, VDD), (1.2e-9, 0.0),
                             (2.2e-9, VDD), (3.2e-9, 0.0)])
        res = _run_ff(dff_setff, clkw, dataw, 8.5e-9)
        _check_capture(res, edges="rise")


class TestTable1Orderings:
    """The paper's published conclusions about the candidates."""

    @pytest.fixture(scope="class")
    def table(self):
        from repro.circuit.experiments import run_table1
        return {row["name"]: row for row in run_table1(dt=2e-12)}

    def test_all_functional(self, table):
        assert all(row["functional"] for row in table.values())

    def test_llopis1_lowest_energy(self, table):
        e_min = min(row["energy_fJ"] for row in table.values())
        assert table["llopis1"]["energy_fJ"] == e_min

    def test_llopis1_cheaper_than_llopis2(self, table):
        assert (table["llopis1"]["energy_fJ"]
                < table["llopis2"]["energy_fJ"])

    def test_chung_family_faster_than_llopis_family(self, table):
        # TG muxed Llopis outputs are slower than the Chung TG-mux ones.
        chung_d = min(table["chung1"]["delay_ps"],
                      table["chung2"]["delay_ps"])
        llopis_d = min(table["llopis1"]["delay_ps"],
                       table["llopis2"]["delay_ps"])
        assert chung_d < llopis_d

    def test_energy_scale_is_hundreds_of_fJ(self, table):
        for row in table.values():
            assert 50 < row["energy_fJ"] < 2000

    def test_delay_scale_is_tens_to_hundreds_of_ps(self, table):
        for row in table.values():
            assert 20 < row["delay_ps"] < 600

    def test_edp_consistency(self, table):
        for row in table.values():
            assert row["edp_fJ_ps"] == pytest.approx(
                row["energy_fJ"] * row["delay_ps"], rel=1e-6)
