"""Tests for DRUID (EDIF normalisation) and E2FMT (EDIF -> BLIF)."""

import pytest

from repro.netlist.structural import StructuralNetlist
from repro.tools.druid import druid, legalize_names, sweep_buffers
from repro.tools.e2fmt import structural_to_logic


def _base() -> StructuralNetlist:
    s = StructuralNetlist("top")
    s.add_port("a", "input")
    s.add_port("y", "output")
    return s


class TestSweepBuffers:
    def test_buffer_chain_collapsed(self):
        s = _base()
        s.add_instance("b1", "BUF", {"A": "a", "Y": "n1"})
        s.add_instance("b2", "BUF", {"A": "n1", "Y": "n2"})
        s.add_instance("g", "INV", {"A": "n2", "Y": "y"})
        out = sweep_buffers(s)
        assert all(i.gate != "BUF" for i in out.instances)
        inv = out.instances[0]
        assert inv.pins["A"] == "a"

    def test_output_port_net_preserved(self):
        s = _base()
        s.add_instance("g", "INV", {"A": "a", "Y": "n1"})
        s.add_instance("b", "BUF", {"A": "n1", "Y": "y"})
        out = sweep_buffers(s)
        out.validate()
        # y (a port) must still be driven.
        assert "y" in out.drivers()

    def test_port_to_port_buffer_kept(self):
        s = _base()
        s.add_instance("b", "BUF", {"A": "a", "Y": "y"})
        out = sweep_buffers(s)
        # A genuine feed-through cannot be removed.
        assert len(out.instances) == 1
        out.validate()

    def test_non_buffers_untouched(self):
        s = _base()
        s.add_instance("g", "INV", {"A": "a", "Y": "y"})
        out = sweep_buffers(s)
        assert out.stats() == s.stats()


class TestLegalizeNames:
    def test_illegal_characters_replaced(self):
        s = StructuralNetlist("top$design")
        s.add_port("a.b", "input")
        s.add_port("y", "output")
        s.add_instance("u$1", "INV", {"A": "a.b", "Y": "y"})
        out = legalize_names(s)
        assert "$" not in out.name
        for port in out.ports:
            assert "." not in port.name
        out.validate()

    def test_uniqueness_preserved(self):
        s = StructuralNetlist("t")
        s.add_port("a$b", "input")
        s.add_port("a.b", "input")     # both map to a_b
        s.add_port("y", "output")
        s.add_instance("u", "AND2", {"A": "a$b", "B": "a.b", "Y": "y"})
        out = legalize_names(s)
        names = [p.name for p in out.ports]
        assert len(names) == len(set(names))
        # The AND still reads two *different* nets.
        inst = out.instances[0]
        assert inst.pins["A"] != inst.pins["B"]


class TestDruidPipeline:
    def test_druid_validates(self):
        s = _base()
        s.add_instance("b", "BUF", {"A": "a", "Y": "n$1"})
        s.add_instance("g", "INV", {"A": "n$1", "Y": "y"})
        out = druid(s)
        out.validate()
        assert all("$" not in n for i in out.instances
                   for n in i.pins.values())


class TestE2fmt:
    def test_gate_covers_lowered(self):
        s = _base()
        s.add_port("b", "input")
        s.add_instance("g", "XOR2", {"A": "a", "B": "b", "Y": "y"})
        logic = structural_to_logic(s)
        out = logic.simulate([{"a": 1, "b": 0}, {"a": 1, "b": 1}])
        assert [o["y"] for o in out] == [1, 0]

    def test_dff_becomes_latch_and_clock_removed_from_inputs(self):
        s = StructuralNetlist("t")
        s.add_port("clk", "input")
        s.add_port("d", "input")
        s.add_port("q", "output")
        s.add_instance("ff", "DFF", {"D": "d", "CLK": "clk", "Q": "q"})
        logic = structural_to_logic(s)
        assert len(logic.latches) == 1
        assert logic.latches[0].control == "clk"
        assert "clk" not in logic.inputs
        assert "clk" in logic.clocks

    def test_mux_semantics(self):
        s = _base()
        s.add_port("s", "input")
        s.add_port("b", "input")
        s.add_instance("m", "MUX2", {"S": "s", "A": "a", "B": "b",
                                     "Y": "y"})
        logic = structural_to_logic(s)
        out = logic.simulate([
            {"s": 0, "a": 1, "b": 0},
            {"s": 1, "a": 1, "b": 0},
        ])
        assert [o["y"] for o in out] == [1, 0]
