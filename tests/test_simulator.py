"""Tests for the transient circuit simulator and cell library."""

import numpy as np
import pytest

from repro.circuit.cells import (inverter, inverter_chain, lut4, mux2_tg,
                                 nand2, nor2, transmission_gate,
                                 tristate_inverter_a,
                                 tristate_inverter_b, xor2)
from repro.circuit.metrics import (crossing_times, logic_level,
                                   propagation_delays, worst_case_delay)
from repro.circuit.network import Circuit
from repro.circuit.simulator import TransientSimulator, simulate
from repro.circuit.waveforms import clock, dc, pulse_train

VDD = 1.8


def settled(res, node):
    return logic_level(float(res.v(node)[-1]), VDD)


class TestRC:
    def test_rc_charging_time_constant(self):
        # A pure RC ladder charges like exp(-t/RC).
        ckt = Circuit()
        a = ckt.node("a")
        y = ckt.node("y")
        ckt.resistor(a, y, 10e3)
        ckt.capacitor(y, 100e-15)        # tau = 1 ns
        ckt.voltage_source(a, pulse_train([(0.1e-9, VDD)],
                                          t_rise=1e-12))
        res = simulate(ckt, 5e-9, dt=1e-12)
        t0 = 0.101e-9
        i = np.searchsorted(res.time, t0 + 1e-9)
        v_tau = res.v("y")[i]
        assert v_tau == pytest.approx(VDD * (1 - np.exp(-1)), rel=0.05)

    def test_resistor_divider_steady_state(self):
        ckt = Circuit()
        mid = ckt.node("mid")
        ckt.resistor(ckt.vdd, mid, 10e3)
        ckt.resistor(mid, ckt.gnd, 10e3)
        res = simulate(ckt, 2e-9, dt=2e-12)
        assert res.v("mid")[-1] == pytest.approx(VDD / 2, rel=0.02)

    def test_zero_resistance_rejected(self):
        ckt = Circuit()
        with pytest.raises(ValueError):
            ckt.resistor(ckt.vdd, ckt.gnd, 0.0)


class TestInverter:
    def test_static_levels(self):
        for vin, expect in ((0.0, 1), (VDD, 0)):
            ckt = Circuit()
            a, y = ckt.node("a"), ckt.node("y")
            inverter(ckt, a, y)
            ckt.voltage_source(a, dc(vin))
            res = simulate(ckt, 1e-9, dt=2e-12)
            assert settled(res, "y") == expect

    def test_energy_is_cv2_per_cycle(self):
        # One full charge/discharge cycle of load C draws ~C*Vdd^2.
        ckt = Circuit()
        a, y = ckt.node("a"), ckt.node("y")
        inverter(ckt, a, y)
        c_load = 20e-15
        ckt.capacitor(y, c_load)
        ckt.voltage_source(a, clock(4e-9, 1, VDD))
        res = simulate(ckt, 4e-9, dt=1e-12)
        expected = c_load * VDD * VDD
        assert res.energy == pytest.approx(expected, rel=0.25)

    def test_bigger_driver_is_faster(self):
        delays = []
        for wn in (1.0, 4.0):
            ckt = Circuit()
            a, y = ckt.node("a"), ckt.node("y")
            inverter(ckt, a, y, wn=wn, wp=2 * wn)
            ckt.capacitor(y, 20e-15)
            ckt.voltage_source(a, clock(6e-9, 1, VDD))
            res = simulate(ckt, 6e-9, dt=1e-12)
            delays.append(worst_case_delay(res.time, res.v("a"),
                                           res.v("y"), VDD,
                                           max_delay=3e-9))
        assert delays[1] < delays[0] / 2

    def test_chain_output_polarity(self):
        ckt = Circuit()
        a = ckt.node("a")
        out = inverter_chain(ckt, a, 3, name="ch")
        ckt.voltage_source(a, dc(0.0))
        res = simulate(ckt, 2e-9, dt=2e-12)
        assert logic_level(float(res.voltages[-1, out]), VDD) == 1


class TestGates:
    @pytest.mark.parametrize("a,b,expect", [(0, 0, 1), (0, 1, 1),
                                            (1, 0, 1), (1, 1, 0)])
    def test_nand_truth_table(self, a, b, expect):
        ckt = Circuit()
        na, nb, y = ckt.node("a"), ckt.node("b"), ckt.node("y")
        nand2(ckt, na, nb, y)
        ckt.voltage_source(na, dc(a * VDD))
        ckt.voltage_source(nb, dc(b * VDD))
        res = simulate(ckt, 1.5e-9, dt=2e-12)
        assert settled(res, "y") == expect

    @pytest.mark.parametrize("a,b,expect", [(0, 0, 1), (0, 1, 0),
                                            (1, 0, 0), (1, 1, 0)])
    def test_nor_truth_table(self, a, b, expect):
        ckt = Circuit()
        na, nb, y = ckt.node("a"), ckt.node("b"), ckt.node("y")
        nor2(ckt, na, nb, y)
        ckt.voltage_source(na, dc(a * VDD))
        ckt.voltage_source(nb, dc(b * VDD))
        res = simulate(ckt, 1.5e-9, dt=2e-12)
        assert settled(res, "y") == expect

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_xor_truth_table(self, a, b):
        ckt = Circuit()
        na, nb, y = ckt.node("a"), ckt.node("b"), ckt.node("y")
        xor2(ckt, na, nb, y)
        ckt.voltage_source(na, dc(a * VDD))
        ckt.voltage_source(nb, dc(b * VDD))
        res = simulate(ckt, 1.5e-9, dt=2e-12)
        assert settled(res, "y") == (a ^ b)

    def test_transmission_gate_passes_when_on(self):
        ckt = Circuit()
        a, b = ckt.node("a"), ckt.node("b")
        en, enb = ckt.node("en"), ckt.node("enb")
        transmission_gate(ckt, a, b, en=en, en_b=enb)
        ckt.capacitor(b, 5e-15)
        ckt.voltage_source(a, dc(VDD))
        ckt.voltage_source(en, dc(VDD))
        ckt.voltage_source(enb, dc(0.0))
        res = simulate(ckt, 2e-9, dt=2e-12)
        assert settled(res, "b") == 1

    def test_transmission_gate_isolates_when_off(self):
        ckt = Circuit()
        a, b = ckt.node("a"), ckt.node("b")
        en, enb = ckt.node("en"), ckt.node("enb")
        transmission_gate(ckt, a, b, en=en, en_b=enb)
        ckt.capacitor(b, 5e-15)
        ckt.voltage_source(a, dc(VDD))
        ckt.voltage_source(en, dc(0.0))
        ckt.voltage_source(enb, dc(VDD))
        res = simulate(ckt, 2e-9, dt=2e-12)
        assert res.v("b")[-1] < 0.3      # only gmin leakage trickle

    @pytest.mark.parametrize("builder", [tristate_inverter_a,
                                         tristate_inverter_b])
    def test_tristate_drives_when_enabled(self, builder):
        ckt = Circuit()
        a, y = ckt.node("a"), ckt.node("y")
        builder(ckt, a, y, en=ckt.vdd, en_b=ckt.gnd)
        ckt.capacitor(y, 3e-15)
        ckt.voltage_source(a, dc(0.0))
        res = simulate(ckt, 2e-9, dt=2e-12)
        assert settled(res, "y") == 1

    @pytest.mark.parametrize("sel,expect", [(0, 0), (1, 1)])
    def test_mux2(self, sel, expect):
        ckt = Circuit()
        d0, d1, y = ckt.node("d0"), ckt.node("d1"), ckt.node("y")
        s, sb = ckt.node("s"), ckt.node("sb")
        mux2_tg(ckt, d0, d1, y, sel=s, sel_b=sb)
        ckt.capacitor(y, 2e-15)
        ckt.voltage_source(d0, dc(0.0))
        ckt.voltage_source(d1, dc(VDD))
        ckt.voltage_source(s, dc(sel * VDD))
        ckt.voltage_source(sb, dc((1 - sel) * VDD))
        res = simulate(ckt, 2e-9, dt=2e-12)
        assert settled(res, "y") == expect


class TestLut4:
    @pytest.mark.parametrize("pattern", [0, 5, 11, 15])
    def test_lut_implements_configured_function(self, pattern):
        bits = [(pattern * 2654435761 >> m) & 1 for m in range(16)]
        idx = pattern  # evaluate at input vector = pattern bits
        sel_vals = [(idx >> i) & 1 for i in range(4)]
        ckt = Circuit()
        ins = [ckt.node(f"i{k}") for k in range(4)]
        insb = [ckt.node(f"ib{k}") for k in range(4)]
        for k in range(4):
            inverter(ckt, ins[k], insb[k], name=f"inv{k}")
            ckt.voltage_source(ins[k], dc(sel_vals[k] * VDD))
        y = ckt.node("y")
        lut4(ckt, ins, insb, bits, y)
        out = ckt.node("out")
        inverter(ckt, y, out, name="ob")
        res = simulate(ckt, 2.5e-9, dt=2e-12)
        assert settled(res, "out") == 1 - bits[idx]


class TestMetrics:
    def test_crossing_times_directions(self):
        t = np.linspace(0, 1, 101)
        v = np.where((t > 0.25) & (t < 0.75), 1.0, 0.0)
        rises = crossing_times(t, v, 0.5, "rise")
        falls = crossing_times(t, v, 0.5, "fall")
        assert len(rises) == 1 and len(falls) == 1
        assert rises[0] < falls[0]

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            crossing_times(np.array([0.0]), np.array([0.0]), 0.5, "up")

    def test_no_response_raises(self):
        t = np.linspace(0, 1e-9, 100)
        vin = np.where(t > 0.5e-9, VDD, 0.0)
        vout = np.zeros_like(t)
        with pytest.raises(ValueError):
            worst_case_delay(t, vin, vout, VDD)

    def test_logic_level_indeterminate(self):
        with pytest.raises(ValueError):
            logic_level(0.9, VDD)

    def test_propagation_delay_pairs_events(self):
        t = np.linspace(0, 4e-9, 4001)
        vin = np.where((t > 1e-9), VDD, 0.0)
        vout = np.where((t > 1.2e-9), VDD, 0.0)
        d = propagation_delays(t, vin, vout, VDD)
        assert len(d) == 1
        assert d[0] == pytest.approx(0.2e-9, rel=0.05)


class TestEnergyAccounting:
    def test_static_cmos_draws_no_steady_current(self):
        ckt = Circuit()
        a, y = ckt.node("a"), ckt.node("y")
        inverter(ckt, a, y)
        ckt.voltage_source(a, dc(0.0))
        res = simulate(ckt, 3e-9, dt=2e-12)
        # After settling, supply current is leakage only (<< 1 uA).
        assert abs(res.supply_current[-1]) < 1e-6

    def test_energy_between_window(self):
        ckt = Circuit()
        a, y = ckt.node("a"), ckt.node("y")
        inverter(ckt, a, y)
        ckt.capacitor(y, 10e-15)
        ckt.voltage_source(a, clock(2e-9, 2, VDD))
        res = simulate(ckt, 4e-9, dt=1e-12)
        both = res.energy_between(0, 4e-9)
        first = res.energy_between(0, 2e-9)
        second = res.energy_between(2e-9, 4e-9)
        assert both == pytest.approx(first + second, rel=0.01)
        assert first == pytest.approx(second, rel=0.15)
