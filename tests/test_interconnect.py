"""Tests for the routing-switch sizing experiments (Figs. 8-10)."""

import pytest

from repro.circuit.interconnect import (build_routing_experiment,
                                        measure_routing, optimum_width,
                                        sweep_pass_transistor)

DT = 4e-12
WIDTHS = [2.0, 10.0, 64.0]


class TestConstruction:
    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            build_routing_experiment(width_mult=1, wire_length=0)
        with pytest.raises(ValueError):
            build_routing_experiment(width_mult=1, wire_length=1,
                                     n_segments=0)
        with pytest.raises(ValueError):
            build_routing_experiment(width_mult=1, wire_length=1,
                                     switch_type="magic")

    def test_area_grows_with_switch_width(self):
        _, _, _, a1 = build_routing_experiment(width_mult=1,
                                               wire_length=2)
        _, _, _, a64 = build_routing_experiment(width_mult=64,
                                                wire_length=2)
        assert a64 > a1

    def test_area_grows_with_wire_length(self):
        _, _, _, a1 = build_routing_experiment(width_mult=10,
                                               wire_length=1)
        _, _, _, a8 = build_routing_experiment(width_mult=10,
                                               wire_length=8)
        assert a8 > a1

    def test_tbuf_variant_builds(self):
        ckt, _, _, _ = build_routing_experiment(width_mult=4,
                                                wire_length=1,
                                                switch_type="tbuf")
        assert len(ckt.mosfets) > 10


class TestMeasurements:
    @pytest.fixture(scope="class")
    def points(self):
        return {w: measure_routing(width_mult=w, wire_length=2, dt=DT)
                for w in WIDTHS}

    def test_signal_arrives(self, points):
        for m in points.values():
            assert 10e-12 < m.delay < 20e-9

    def test_delay_decreases_with_width_initially(self, points):
        assert points[10.0].delay < points[2.0].delay

    def test_energy_increases_with_width(self, points):
        assert points[64.0].energy > points[2.0].energy

    def test_eda_convex_fig8_shape(self, points):
        # Mid width beats both extremes (the Fig. 8 bathtub).
        assert points[10.0].eda < points[2.0].eda
        assert points[10.0].eda < points[64.0].eda

    def test_double_spacing_lowers_energy(self):
        m_min = measure_routing(width_mult=10, wire_length=2,
                                metal_spacing=1.0, dt=DT)
        m_dbl = measure_routing(width_mult=10, wire_length=2,
                                metal_spacing=2.0, dt=DT)
        assert m_dbl.energy < m_min.energy

    def test_longer_wire_costs_more(self):
        m1 = measure_routing(width_mult=10, wire_length=1, dt=DT)
        m4 = measure_routing(width_mult=10, wire_length=4, dt=DT)
        assert m4.energy > m1.energy
        assert m4.delay > m1.delay


class TestSweep:
    def test_sweep_structure(self):
        out = sweep_pass_transistor([2.0, 10.0], [1, 2], dt=DT)
        assert set(out) == {1, 2}
        assert [m.width_mult for m in out[1]] == [2.0, 10.0]

    def test_optimum_width_selection(self):
        ms = [measure_routing(width_mult=w, wire_length=1, dt=DT)
              for w in WIDTHS]
        assert optimum_width(ms) in WIDTHS

    def test_optimum_grows_with_wire_length(self):
        # The headline Fig. 8 observation: longer wires want bigger
        # switches (ties are possible at coarse width grids).
        ws = [2.0, 4.0, 10.0, 32.0, 64.0]
        short = [measure_routing(width_mult=w, wire_length=1, dt=DT)
                 for w in ws]
        long = [measure_routing(width_mult=w, wire_length=8, dt=DT)
                for w in ws]
        assert optimum_width(long) >= optimum_width(short)
        # And the relative EDA penalty of a tiny switch is much worse
        # on the long wire.
        ratio_short = short[0].eda / min(m.eda for m in short)
        ratio_long = long[0].eda / min(m.eda for m in long)
        assert ratio_long > ratio_short
