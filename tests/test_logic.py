"""Tests for the logic-network container and cube algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.netlist.logic import Cube, Latch, LogicNetwork, LogicNode

cube_st = st.text(alphabet="01-", min_size=3, max_size=3)
minterm_st = st.text(alphabet="01", min_size=3, max_size=3)


class TestCube:
    def test_covers(self):
        assert Cube.covers("1-0", "110")
        assert not Cube.covers("1-0", "111")

    @given(cube_st, minterm_st)
    def test_intersection_consistent_with_covers(self, c, m):
        inter = Cube.intersect(c, m)
        if Cube.covers(c, m):
            assert inter == m
        elif inter is not None:
            assert inter == m  # intersect with minterm is m or None

    @given(cube_st, cube_st)
    def test_contains_implies_zero_distance(self, a, b):
        if Cube.contains(a, b):
            assert Cube.distance(a, b) == 0

    @given(cube_st)
    def test_self_containment(self, c):
        assert Cube.contains(c, c)
        assert Cube.intersect(c, c) == c

    def test_distance(self):
        assert Cube.distance("10-", "01-") == 2
        assert Cube.distance("1--", "-0-") == 0

    def test_literal_count(self):
        assert Cube.literal_count("1-0") == 2
        assert Cube.literal_count("---") == 0


class TestLogicNode:
    def test_bad_cube_width(self):
        with pytest.raises(ValueError):
            LogicNode("n", ["a", "b"], ["1"])

    def test_bad_cube_chars(self):
        with pytest.raises(ValueError):
            LogicNode("n", ["a"], ["x"])

    def test_eval_or(self):
        node = LogicNode("n", ["a", "b"], ["1-", "-1"])
        assert node.eval({"a": 0, "b": 0}) == 0
        assert node.eval({"a": 1, "b": 0}) == 1
        assert node.eval({"a": 0, "b": 1}) == 1

    def test_truth_table_and(self):
        node = LogicNode("n", ["a", "b"], ["11"])
        assert node.truth_table() == 0b1000

    def test_constants(self):
        assert LogicNode("z", [], []).is_constant() == 0
        assert LogicNode("o", [], [""]).is_constant() == 1
        assert LogicNode("t", ["a"], ["-"]).is_constant() == 1
        assert LogicNode("n", ["a"], ["1"]).is_constant() is None


class TestLatch:
    def test_bad_type(self):
        with pytest.raises(ValueError):
            Latch("a", "b", ltype="xx")

    def test_bad_init(self):
        with pytest.raises(ValueError):
            Latch("a", "b", init=7)


class TestLogicNetwork:
    def _xor_ff_net(self):
        net = LogicNetwork("t")
        net.add_input("a")
        net.add_input("b")
        net.add_node("x", ["a", "b"], ["10", "01"])
        net.add_latch("x", "q", control="clk")
        net.add_node("y", ["q"], ["1"])
        net.add_output("y")
        return net

    def test_duplicate_node_rejected(self):
        net = LogicNetwork("t")
        net.add_input("a")
        net.add_node("n", ["a"], ["1"])
        with pytest.raises(ValueError):
            net.add_node("n", ["a"], ["0"])

    def test_validate_undriven(self):
        net = LogicNetwork("t")
        net.add_node("n", ["ghost"], ["1"])
        net.add_output("n")
        with pytest.raises(ValueError):
            net.validate()

    def test_validate_undriven_output(self):
        net = LogicNetwork("t")
        net.add_output("nothing")
        with pytest.raises(ValueError):
            net.validate()

    def test_cycle_detection(self):
        net = LogicNetwork("t")
        net.add_node("a", ["b"], ["1"])
        net.add_node("b", ["a"], ["1"])
        with pytest.raises(ValueError):
            net.topo_order()

    def test_latch_breaks_cycles(self):
        net = LogicNetwork("t")
        net.add_node("d", ["q"], ["0"])   # d = NOT q
        net.add_latch("d", "q")
        net.add_output("d")
        net.validate()  # no combinational cycle

    def test_topo_order_respects_dependencies(self):
        net = self._xor_ff_net()
        order = net.topo_order()
        assert set(order) == {"x", "y"}

    def test_simulate_toggle(self):
        net = self._xor_ff_net()
        vec = {"a": 1, "b": 0}
        out = net.simulate([vec] * 3)
        # q starts 0; x=1 always; q toggles to 1 after first cycle.
        assert [o["y"] for o in out] == [0, 1, 1]

    def test_fanout_map(self):
        net = self._xor_ff_net()
        fo = net.fanout_map()
        assert fo["a"] == ["x"]
        assert fo["q"] == ["y"]

    def test_stats_and_copy(self):
        net = self._xor_ff_net()
        c = net.copy()
        assert c.stats() == net.stats()
        c.add_input("z")
        assert c.stats() != net.stats()

    def test_k_feasibility(self):
        net = self._xor_ff_net()
        assert net.is_k_feasible(2)
        assert not net.is_k_feasible(1)
