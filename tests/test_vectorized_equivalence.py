"""Differential tests: vectorized implementations vs scalar oracles.

The batched transient engine, the incremental-cost placer and the
incremental router each ship alongside the original scalar
implementation (kept selectable via :mod:`repro.impls`).  This suite
pins the equivalence contract:

* transients -- batched waveforms match the scalar simulator within
  the Newton solver tolerance on arbitrary RC / pass-transistor
  circuits (hypothesis-generated), and bit-for-bit when the batch
  engine uses its dense solver;
* placement and routing -- the incremental implementations reproduce
  the scalar results *exactly* (same placements, same routing trees)
  for the same seeds;
* selection -- the environment escape hatches resolve as documented;
* failure surfacing -- a :class:`NewtonConvergenceError` crossing the
  experiment engine arrives as a structured ``JobError`` that still
  names the offending nodes and timestep.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import impls
from repro.arch import DEFAULT_ARCH, build_rr_graph
from repro.bench import counter, random_logic
from repro.circuit import (Circuit, NewtonConvergenceError, STM018,
                           simulate, simulate_batch)
from repro.circuit.cells import inverter, pass_nmos
from repro.circuit.waveforms import pulse_train
from repro.exp import JobSpec, NullCache, ParallelRunner
from repro.exp.tasks import task
from repro.pack import pack_netlist
from repro.place import place
from repro.route import route, route_min_channel_width
from repro.synth import optimize_and_map

VDD = STM018.vdd

#: The Newton convergence tolerance of both engines (V); the batched
#: banded solve may deviate from the scalar dense solve by machine
#: epsilon only, so matching within solver tolerance is a loose bound.
SOLVER_TOL = 1e-4


# ---------------------------------------------------------------------------
# Random circuit strategies
# ---------------------------------------------------------------------------

@st.composite
def rc_params(draw):
    """Parameters of one random RC ladder."""
    n_stages = draw(st.integers(1, 4))
    r_kohm = draw(st.lists(st.integers(1, 40), min_size=n_stages,
                           max_size=n_stages))
    c_ff = draw(st.lists(st.integers(2, 150), min_size=n_stages,
                         max_size=n_stages))
    t_rise_ps = draw(st.integers(50, 400))
    return r_kohm, c_ff, t_rise_ps


@st.composite
def pass_chain_params(draw):
    """Parameters of one inverter-driven pass-transistor chain."""
    n_pass = draw(st.integers(1, 3))
    widths = draw(st.lists(st.integers(1, 8), min_size=n_pass,
                           max_size=n_pass))
    c_ff = draw(st.integers(5, 60))
    return widths, c_ff


def _rc_circuit(params):
    r_kohm, c_ff, t_rise_ps = params
    ckt = Circuit(tech=STM018, title="rc")
    node = ckt.node("in")
    ckt.voltage_source(node, pulse_train(
        [(t_rise_ps * 1e-12, VDD), (2e-9, 0.0)], v_init=0.0))
    for i, (r, c) in enumerate(zip(r_kohm, c_ff)):
        nxt = ckt.node(f"n{i}")
        ckt.resistor(node, nxt, r * 1e3)
        ckt.capacitor(nxt, c * 1e-15)
        node = nxt
    return ckt, 4e-9


def _pass_circuit(params):
    widths, c_ff = params
    ckt = Circuit(tech=STM018, title="pass")
    a = ckt.node("a")
    ckt.voltage_source(a, pulse_train([(0.2e-9, VDD), (2e-9, 0.0)],
                                      v_init=0.0))
    node = ckt.node("drv")
    inverter(ckt, a, node, name="drv")
    for i, w in enumerate(widths):
        nxt = ckt.node(f"p{i}")
        pass_nmos(ckt, node, nxt, en=ckt.vdd, w=float(w),
                  name=f"sw{i}")
        ckt.capacitor(nxt, c_ff * 1e-15)
        node = nxt
    return ckt, 4e-9


def _assert_within_tol(ckts, t_ends, dt=2e-12):
    scalar = [simulate(c, t, dt=dt) for c, t in zip(ckts, t_ends)]
    batched = simulate_batch(ckts, t_ends, dt=dt)
    for rs, rb in zip(scalar, batched):
        assert np.array_equal(rs.time, rb.time)
        assert rs.node_names == rb.node_names
        dv = np.abs(rs.voltages - rb.voltages).max()
        assert dv <= SOLVER_TOL, f"waveform deviation {dv:.3e} V"
        di = np.abs(rs.supply_current - rb.supply_current).max()
        assert di <= SOLVER_TOL, f"supply deviation {di:.3e} A"


class TestTransientEquivalence:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(rc_params(), min_size=1, max_size=3))
    def test_random_rc_within_solver_tolerance(self, param_sets):
        ckts, t_ends = zip(*[_rc_circuit(p) for p in param_sets])
        _assert_within_tol(list(ckts), list(t_ends))

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(pass_chain_params(), min_size=1, max_size=3))
    def test_random_pass_chains_within_solver_tolerance(self,
                                                       param_sets):
        ckts, t_ends = zip(*[_pass_circuit(p) for p in param_sets])
        _assert_within_tol(list(ckts), list(t_ends))

    def test_dense_solver_is_bit_identical(self):
        """solver="dense" reproduces the scalar engine bit-for-bit."""
        ckts, t_ends = zip(*[
            _rc_circuit(([5, 20], [30, 80], 150)),
            _pass_circuit(([2, 6], 25)),
        ])
        scalar = [simulate(c, t, dt=2e-12)
                  for c, t in zip(ckts, t_ends)]
        batched = simulate_batch(list(ckts), list(t_ends), dt=2e-12,
                                 solver="dense")
        for rs, rb in zip(scalar, batched):
            assert np.array_equal(rs.time, rb.time)
            assert np.array_equal(rs.voltages, rb.voltages)
            assert np.array_equal(rs.supply_current, rb.supply_current)

    def test_heterogeneous_batch_time_axes(self):
        """Mixed step counts repack correctly mid-batch."""
        ckts = []
        t_ends = []
        for n, t_end in ((1, 1.5e-9), (3, 4e-9), (2, 2.5e-9)):
            c, _ = _rc_circuit(([10] * n, [50] * n, 100))
            ckts.append(c)
            t_ends.append(t_end)
        _assert_within_tol(ckts, t_ends)


# ---------------------------------------------------------------------------
# Place and route: exact reproduction
# ---------------------------------------------------------------------------

def _packed(net):
    return pack_netlist(optimize_and_map(net, 4).network)


@pytest.fixture(scope="module")
def pr_netlists():
    return {
        "counter8": _packed(counter(8)),
        "rand": _packed(random_logic("veq", n_pi=6, n_po=4,
                                     n_nodes=45, seed=11)),
    }


class TestPlacerEquivalence:
    @pytest.mark.parametrize("name,seed", [("counter8", 5),
                                           ("counter8", 9),
                                           ("rand", 3)])
    def test_incremental_placement_exact(self, pr_netlists, name, seed):
        cn = pr_netlists[name]
        a = place(cn, DEFAULT_ARCH, seed=seed, effort=0.5,
                  impl=impls.SCALAR)
        b = place(cn, DEFAULT_ARCH, seed=seed, effort=0.5,
                  impl=impls.INCREMENTAL)
        assert a.loc == b.loc
        assert a.cost == b.cost
        assert a.grid_size == b.grid_size


class TestRouterEquivalence:
    @pytest.mark.parametrize("name,seed", [("counter8", 5),
                                           ("rand", 2)])
    def test_incremental_routing_exact(self, pr_netlists, name, seed):
        cn = pr_netlists[name]
        pl = place(cn, DEFAULT_ARCH, seed=seed, effort=0.5)
        g = build_rr_graph(DEFAULT_ARCH, pl.grid_size)
        a = route(pl, g, impl=impls.SCALAR)
        b = route(pl, g, impl=impls.INCREMENTAL)
        assert a.success == b.success
        assert a.iterations == b.iterations
        assert a.overused == b.overused
        assert {k: t.parents for k, t in a.trees.items()} \
            == {k: t.parents for k, t in b.trees.items()}

    def test_min_width_search_exact(self, pr_netlists):
        pl = place(pr_netlists["counter8"], DEFAULT_ARCH, seed=5,
                   effort=0.5)
        wa, ra, _ = route_min_channel_width(pl, DEFAULT_ARCH,
                                            impl=impls.SCALAR)
        wb, rb, _ = route_min_channel_width(pl, DEFAULT_ARCH,
                                            impl=impls.INCREMENTAL)
        assert wa == wb
        assert {k: t.parents for k, t in ra.trees.items()} \
            == {k: t.parents for k, t in rb.trees.items()}


# ---------------------------------------------------------------------------
# Implementation selection
# ---------------------------------------------------------------------------

class TestImplSelection:
    def test_defaults_are_vectorized(self, monkeypatch):
        for var in (impls.ENV_SCALAR_ORACLE, impls.ENV_SIM_IMPL,
                    impls.ENV_PLACE_IMPL, impls.ENV_ROUTE_IMPL):
            monkeypatch.delenv(var, raising=False)
        assert impls.sim_impl() == impls.BATCHED
        assert impls.place_impl() == impls.INCREMENTAL
        assert impls.route_impl() == impls.INCREMENTAL

    def test_scalar_oracle_forces_everything(self, monkeypatch):
        monkeypatch.setenv(impls.ENV_SCALAR_ORACLE, "1")
        assert impls.sim_impl() == impls.SCALAR
        assert impls.place_impl() == impls.SCALAR
        assert impls.route_impl() == impls.SCALAR
        # ... but an explicit choice still wins.
        assert impls.sim_impl(impls.BATCHED) == impls.BATCHED

    def test_per_domain_env_override(self, monkeypatch):
        monkeypatch.delenv(impls.ENV_SCALAR_ORACLE, raising=False)
        monkeypatch.setenv(impls.ENV_PLACE_IMPL, "scalar")
        assert impls.place_impl() == impls.SCALAR
        assert impls.route_impl() == impls.INCREMENTAL

    def test_versions_distinct_per_impl(self):
        assert (impls.impl_version("sim", impls.SCALAR)
                != impls.impl_version("sim", impls.BATCHED))
        assert (impls.impl_version("place", impls.SCALAR)
                != impls.impl_version("place", impls.INCREMENTAL))
        assert (impls.impl_version("route", impls.SCALAR)
                != impls.impl_version("route", impls.INCREMENTAL))

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError):
            impls.sim_impl("quantum")
        with pytest.raises(ValueError):
            impls.impl_version("sim", "quantum")


# ---------------------------------------------------------------------------
# Convergence-failure surfacing through the engine
# ---------------------------------------------------------------------------

@task("_test_newton_fail")
def _newton_fail(**_ignored):
    raise NewtonConvergenceError.at_step(
        time=3.2e-10, dt=1e-12, nodes=["ff.q", "ff.qb"],
        detail="injected")


class TestConvergenceErrorSurfacing:
    def test_error_names_nodes_and_timestep(self):
        err = NewtonConvergenceError.at_step(
            time=3.2e-10, dt=1e-12, nodes=["ff.q", "ff.qb"])
        assert err.nodes == ["ff.q", "ff.qb"]
        assert err.time == 3.2e-10
        assert err.dt == 1e-12
        assert "ff.q" in str(err) and "3.2000e-10" in str(err)

    def test_surfaces_as_structured_job_error(self):
        runner = ParallelRunner(jobs=1, cache=NullCache())
        (res,) = runner.run([JobSpec.make("_test_newton_fail")])
        assert not res.ok
        assert res.error.kind == "error"
        assert res.error.exc_type == "NewtonConvergenceError"
        assert "ff.q" in res.error.message
        assert "t=3.2000e-10" in res.error.message
        assert "dt=1.000e-12" in res.error.message
