"""Unit tests for the typed QoR metric registry (:mod:`repro.obs.metrics`).

Covers spec validation, the three metric kinds and their accumulation
semantics, publish-time type/kind checking, export/merge round-trips
(the worker-process path), the ambient ``collect`` context, and the
``profiled`` resource hook.
"""

import math

import pytest

from repro import obs
from repro.obs import metrics as m


class TestRegistry:
    def test_register_and_lookup(self):
        reg = m.MetricRegistry()
        spec = m.MetricSpec("x.count", m.COUNTER, "items", "things seen")
        reg.register(spec)
        assert reg.spec_for("x.count") is spec
        assert "x.count" in reg and len(reg) == 1
        assert reg.names() == ["x.count"]

    def test_reregistering_identical_spec_is_idempotent(self):
        reg = m.MetricRegistry()
        reg.register(m.MetricSpec("a", m.GAUGE, "u", "d"))
        reg.register(m.MetricSpec("a", m.GAUGE, "u", "d"))
        assert len(reg) == 1

    def test_conflicting_respec_rejected(self):
        reg = m.MetricRegistry()
        reg.register(m.MetricSpec("a", m.GAUGE, "u", "d"))
        with pytest.raises(ValueError, match="already registered"):
            reg.register(m.MetricSpec("a", m.COUNTER, "u", "d"))

    @pytest.mark.parametrize("kwargs", [
        {"kind": "histogram"},
        {"direction": "up"},
        {"rel_tol": -0.1},
        {"name": ""},
    ])
    def test_invalid_spec_fields_rejected(self, kwargs):
        base = {"name": "a", "kind": m.GAUGE, "unit": "",
                "description": ""}
        with pytest.raises(ValueError):
            m.MetricSpec(**{**base, **kwargs})

    def test_flow_vocabulary_is_registered_and_gated(self):
        for name in m.FLOW_SUMMARY_METRICS.values():
            assert m.REGISTRY.spec_for(name) is not None, name
        assert m.REGISTRY.spec_for("flow.critical_path_ns").gate
        assert m.REGISTRY.spec_for("flow.total_mW").gate
        # Resource metrics ride along but never gate a build.
        assert not m.REGISTRY.spec_for("flow.seconds").gate
        assert not m.REGISTRY.spec_for("exp.job_seconds").gate


class TestMetricSet:
    def test_counter_sums(self):
        ms = m.MetricSet()
        ms.counter("exp.jobs", 2)
        ms.counter("exp.jobs", 3)
        assert ms.value("exp.jobs") == 5

    def test_gauge_last_write_wins(self):
        ms = m.MetricSet()
        ms.gauge("flow.luts", 10)
        ms.gauge("flow.luts", 12)
        assert ms.value("flow.luts") == 12

    def test_dist_reports_mean_min_max(self):
        ms = m.MetricSet()
        for v in (1.0, 2.0, 6.0):
            ms.dist("exp.job_seconds", v)
        (row,) = ms.export()
        assert row["value"] == pytest.approx(3.0)
        assert row["min"] == 1.0 and row["max"] == 6.0 and row["n"] == 3

    def test_stage_tag_separates_series(self):
        ms = m.MetricSet()
        ms.dist("flow.seconds", 1.0, stage="synthesis")
        ms.dist("flow.seconds", 9.0, stage="place_route")
        d = ms.as_dict()
        assert d["flow.seconds[synthesis]"] == 1.0
        assert d["flow.seconds[place_route]"] == 9.0

    @pytest.mark.parametrize("bad", [True, "7", None, object()])
    def test_non_numeric_values_rejected(self, bad):
        with pytest.raises(TypeError):
            m.MetricSet().publish("x", bad)

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_non_finite_values_rejected(self, bad):
        with pytest.raises(ValueError):
            m.MetricSet().publish("x", bad)

    def test_kind_mismatch_with_registry_rejected(self):
        ms = m.MetricSet()
        with pytest.raises(ValueError, match="registered as"):
            ms.counter("flow.luts")     # flow.luts is a gauge

    def test_negative_counter_increment_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            m.MetricSet().counter("exp.jobs", -1)

    def test_unregistered_name_defaults_to_gauge(self):
        ms = m.MetricSet()
        ms.publish("custom.thing", 4.2)
        (row,) = ms.export()
        assert row["kind"] == m.GAUGE and row["value"] == 4.2

    def test_export_merge_roundtrip(self):
        worker = m.MetricSet()
        worker.counter("exp.jobs", 3)
        worker.gauge("flow.luts", 20)
        worker.dist("exp.job_seconds", 2.0)
        worker.dist("exp.job_seconds", 4.0)

        parent = m.MetricSet()
        parent.counter("exp.jobs", 1)
        parent.dist("exp.job_seconds", 6.0)
        parent.merge(worker.export())

        assert parent.value("exp.jobs") == 4          # counters add
        assert parent.value("flow.luts") == 20        # gauges adopt
        # Distribution aggregates fold: mean over all 3 samples.
        assert parent.value("exp.job_seconds") == pytest.approx(4.0)
        (row,) = [r for r in parent.export()
                  if r["name"] == "exp.job_seconds"]
        assert row["n"] == 3 and row["min"] == 2.0 and row["max"] == 6.0


class TestAmbient:
    def test_collect_installs_and_restores(self):
        outer = m.metric_set()
        with m.collect() as ms:
            assert m.metric_set() is ms
            m.counter("exp.jobs")
            m.annotate(circuit="c17")
        assert m.metric_set() is outer
        assert ms.value("exp.jobs") == 1
        assert ms.context["circuit"] == "c17"

    def test_publish_many(self):
        with m.collect() as ms:
            m.publish_many({"flow.luts": 18, "flow.clbs": 7})
        assert ms.value("flow.luts") == 18
        assert ms.value("flow.clbs") == 7


class TestProfiled:
    def test_profiled_attaches_span_attrs_and_metrics(self):
        with obs.capture() as tr, m.collect() as ms:
            with obs.span("flow.synthesis") as sp:
                with m.profiled(sp, "flow", stage="synthesis"):
                    sum(range(10000))
        (rec,) = [r for r in tr.export()
                  if r["name"] == "flow.synthesis"]
        assert rec["attrs"]["cpu_s"] >= 0.0
        assert rec["attrs"]["peak_rss_kb"] > 0
        assert ms.get("flow.cpu_s", stage="synthesis") is not None
        assert ms.get("flow.peak_rss_kb", stage="synthesis") > 0

    def test_profiled_skips_noop_span_entirely(self):
        with m.collect() as ms:
            with m.profiled(obs.NOOP_SPAN, "flow", stage="x"):
                pass
        assert len(ms) == 0
