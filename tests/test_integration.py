"""Cross-module integration tests: the whole flow, behaviour-preserving.

The strongest invariant the flow must satisfy: at every representation
change (VHDL -> gates -> BLIF -> optimised -> mapped -> packed ->
bitstream) the circuit's cycle-accurate behaviour is identical, and the
bitstream's LUT configuration agrees with the mapped network's truth
tables.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DEFAULT_ARCH, build_rr_graph
from repro.bench import counter, mcnc_class_suite, random_logic
from repro.bitgen import generate_config, unpack_bitstream
from repro.flow import FlowOptions
from repro.flow.flow import run_flow_from_logic
from repro.pack import pack_netlist
from repro.place import place
from repro.route import route
from repro.synth import optimize_and_map


def _rand_vecs(inputs, n, seed):
    rng = random.Random(seed)
    return [{i: rng.randint(0, 1) for i in inputs} for _ in range(n)]


class TestBehaviourThroughFlow:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_random_combinational_equivalence(self, seed):
        net = random_logic("r", n_pi=7, n_po=4, n_nodes=35, seed=seed)
        res = run_flow_from_logic(net, FlowOptions(seed=1))
        vecs = _rand_vecs(net.inputs, 16, seed + 1)
        assert net.simulate(vecs) == res.mapped.simulate(vecs)

    def test_sequential_equivalence(self):
        net = random_logic("r", n_pi=6, n_po=4, n_nodes=40, seed=77,
                           registered=True)
        res = run_flow_from_logic(net, FlowOptions(seed=1))
        vecs = _rand_vecs(net.inputs, 25, 3)
        assert net.simulate(vecs) == res.mapped.simulate(vecs)

    def test_suite_routes_and_programs(self):
        for net in mcnc_class_suite()[:6]:
            res = run_flow_from_logic(net, FlowOptions(seed=2))
            assert res.routing.success, net.name
            assert res.bitstream, net.name


class TestBitstreamAgreesWithNetlist:
    def test_decoded_luts_reproduce_functions(self):
        mapped = optimize_and_map(counter(6), 4).network
        cn = pack_netlist(mapped)
        pl = place(cn, DEFAULT_ARCH, seed=8)
        g = build_rr_graph(DEFAULT_ARCH, pl.grid_size)
        rr = route(pl, g)
        cfg = generate_config(mapped, cn, pl, rr, g, DEFAULT_ARCH)
        # Evaluate each configured LUT against the mapped node.
        for c in cn.clusters:
            site = pl.loc[c.name]
            clb = cfg.clbs[(site.x, site.y)]
            for j, b in enumerate(c.bles):
                if b.lut is None:
                    continue
                node = mapped.nodes[b.lut]
                n_in = len(node.fanins)
                for m in range(1 << n_in):
                    values = {f: (m >> i) & 1
                              for i, f in enumerate(node.fanins)}
                    assert clb.lut_bits[j][m] == node.eval(values)

    def test_every_used_clb_has_clock_iff_registered(self):
        mapped = optimize_and_map(counter(6), 4).network
        cn = pack_netlist(mapped)
        pl = place(cn, DEFAULT_ARCH, seed=8)
        g = build_rr_graph(DEFAULT_ARCH, pl.grid_size)
        rr = route(pl, g)
        cfg = generate_config(mapped, cn, pl, rr, g, DEFAULT_ARCH)
        for c in cn.clusters:
            site = pl.loc[c.name]
            clb = cfg.clbs[(site.x, site.y)]
            has_ff = any(b.registered for b in c.bles)
            assert clb.clb_clk_en == (1 if has_ff else 0)


class TestQoRSanity:
    def test_wirelength_grows_with_circuit_size(self):
        small = run_flow_from_logic(
            random_logic("s", n_pi=6, n_po=3, n_nodes=20, seed=1),
            FlowOptions(seed=1))
        big = run_flow_from_logic(
            random_logic("b", n_pi=12, n_po=8, n_nodes=120, seed=1),
            FlowOptions(seed=1))
        wl_s = small.routing.total_wirelength(small.rr_graph)
        wl_b = big.routing.total_wirelength(big.rr_graph)
        assert wl_b > wl_s

    def test_seed_changes_placement_not_function(self):
        net = counter(6)
        a = run_flow_from_logic(net, FlowOptions(seed=1))
        b = run_flow_from_logic(net, FlowOptions(seed=99))
        vecs = [{"en": 1}] * 10
        assert a.mapped.simulate(vecs) == b.mapped.simulate(vecs)
