"""Tests for the gated-clock experiments (Tables 2 and 3)."""

import pytest

from repro.circuit.clockgate import build_ble_clock, build_clb_clock
from repro.circuit.experiments import (gated_clock_breakeven, run_table2,
                                       run_table3)
from repro.circuit.simulator import simulate

DT = 2e-12


class TestCircuitConstruction:
    def test_ble_gated_requires_enable(self):
        with pytest.raises(ValueError):
            build_ble_clock(gated=True, enable=None)

    def test_clb_n_on_range(self):
        with pytest.raises(ValueError):
            build_clb_clock(gated=False, n_on=6)

    def test_single_vs_gated_device_counts(self):
        single = build_ble_clock(gated=False)
        gated = build_ble_clock(gated=True, enable=1)
        # The NAND replaces the final inverter: two extra transistors.
        assert (len(gated.circuit.mosfets)
                == len(single.circuit.mosfets) + 2)

    def test_gated_ff_clock_stays_high_when_disabled(self):
        setup = build_ble_clock(gated=True, enable=0, data_active=False)
        res = simulate(setup.circuit, setup.t_sim, dt=DT)
        ffclk = res.v("ffclk")
        # NAND output parked at 1 while the clock upstream toggles.
        assert ffclk[len(ffclk) // 2:].min() > 1.5


class TestTable2:
    @pytest.fixture(scope="class")
    def t2(self):
        return run_table2(dt=DT)

    def test_enable0_saves_majority_of_energy(self, t2):
        # Paper: ~77 % saving; our calibration lands > 55 %.
        assert t2["saving_en0_pct"] > 55.0

    def test_enable1_overhead_is_small(self, t2):
        # Paper: +6.2 %.  Ours must stay below ~15 % either way.
        assert abs(t2["overhead_en1_pct"]) < 15.0

    def test_single_clock_energy_scale(self, t2):
        # Paper: 40.76 fJ per cycle.
        assert 20 < t2["single_fJ"] < 120


class TestTable3:
    @pytest.fixture(scope="class")
    def t3(self):
        return run_table3(dt=DT)

    def _row(self, t3, cond):
        return next(r for r in t3 if r["condition"] == cond)

    def test_gating_saves_when_all_off(self, t3):
        row = self._row(t3, "all_off")
        # Paper: -83 %; ours lands deep negative.
        assert row["delta_pct"] < -55.0

    def test_gating_costs_when_active(self, t3):
        for cond in ("one_on", "all_on"):
            assert self._row(t3, cond)["delta_pct"] > 0.0

    def test_energy_monotone_in_active_ffs(self, t3):
        e = [self._row(t3, c)["single_fJ"]
             for c in ("all_off", "one_on", "all_on")]
        assert e[0] < e[1] < e[2]

    def test_breakeven_probability(self, t3):
        p = gated_clock_breakeven(t3)
        # Gating must pay off for plausible idle probabilities
        # (paper's criterion: worthwhile when P(all off) > ~1/3).
        assert 0.0 < p < 0.5
