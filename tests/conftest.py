"""Test-wide isolation for the persistent observability stores.

The CLI records every successful ``flow``/``vpr``/``exp`` invocation
into the run DB (``$REPRO_RUN_DB`` or ``~/.cache/repro/runs.db``).
Tests must never append to the developer's real QoR history, so every
test gets a throwaway DB path by default; tests that exercise the DB
explicitly pass their own ``--run-db``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_db(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_DB", str(tmp_path / "test-runs.db"))
