"""Test-wide isolation for the persistent observability stores.

The CLI records every successful ``flow``/``vpr``/``exp`` invocation
into the run DB (``$REPRO_RUN_DB`` or ``~/.cache/repro/runs.db``).
Tests must never append to the developer's real QoR history, so every
test gets a throwaway DB path by default; tests that exercise the DB
explicitly pass their own ``--run-db``.

Hypothesis profiles: the property suites (chipdb round-trip) register
a bounded ``ci`` profile -- few examples, no deadline -- so the fast
``-m 'not slow'`` CI leg stays time-bounded, and a ``thorough``
profile for local soak runs.  Select with ``HYPOTHESIS_PROFILE=ci``
(the CI workflow does); the default profile stays untouched.
"""

import pytest

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci", max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])
    settings.register_profile(
        "thorough", max_examples=300, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])
    import os
    if os.environ.get("HYPOTHESIS_PROFILE"):
        settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])
except ImportError:                       # pragma: no cover
    pass                                  # property suites self-skip


@pytest.fixture(autouse=True)
def _isolated_run_db(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_DB", str(tmp_path / "test-runs.db"))
    # Live telemetry stays off (and its snapshot dir away from the
    # developer's ~/.cache) unless a test opts in explicitly.
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_HB_INTERVAL", raising=False)
