"""Failure-injection tests for the fault-tolerant experiment engine.

Each test injects one (or several) of the failure modes the pooled
runner must survive -- a job that sleeps past its timeout, a worker
that dies mid-job (``os._exit``), a flaky task that succeeds only on a
retry -- and asserts the contract: the batch always completes, results
stay aligned one-to-one with the submitted specs in submission order,
and every failure is captured as a structured :class:`JobError` rather
than hanging or poisoning the pool.

The injected task kinds are registered at import time; worker processes
are forked on Linux, so they inherit the registry.
"""

import multiprocessing as mp
import os
import pickle
import signal
import threading
import time

import pytest

from repro import obs
from repro.exp import (JobError, JobFailedError, JobSpec, NullCache,
                      ParallelRunner, ResultCache, get_pool)
from repro.exp.tasks import task

pytestmark = pytest.mark.skipif(
    mp.get_start_method(allow_none=False) != "fork",
    reason="injected task kinds require fork start method")


@task("_test_quick")
def _quick(tag: int = 0, **_ignored):
    return {"tag": tag, "pid": os.getpid()}


@task("_test_sleep")
def _sleep(seconds: float = 30.0, **_ignored):
    time.sleep(seconds)
    return "overslept"


@task("_test_exit")
def _exit(code: int = 17, **_ignored):
    os._exit(code)


@task("_test_raise")
def _raise(message: str = "boom", **_ignored):
    raise ValueError(message)


@task("_test_flaky")
def _flaky(marker: str = "", fail_times: int = 1, **_ignored):
    """Fails until ``fail_times`` attempts are on record in ``marker``.

    The attempt count lives in a file so it survives the fresh worker
    process each retry runs in.
    """
    with open(marker, "a") as fh:
        fh.write("x")
    attempts = os.path.getsize(marker)
    if attempts <= fail_times:
        raise RuntimeError(f"flaky failure #{attempts}")
    return {"attempts": attempts}


@task("_test_traced")
def _traced(depth: int = 2, **_ignored):
    with obs.span("task.outer", depth=depth):
        with obs.span("task.inner"):
            pass
    return "traced"


@task("_test_killable")
def _killable(pid_file: str = "", once_marker: str = "", **_ignored):
    """First attempt: publish the worker pid and hang (so the test can
    SIGKILL the worker mid-job).  Any retry returns immediately."""
    if os.path.exists(once_marker):
        return {"pid": os.getpid(), "retried": True}
    with open(once_marker, "w") as fh:
        fh.write("x")
    with open(pid_file + ".tmp", "w") as fh:
        fh.write(str(os.getpid()))
    os.replace(pid_file + ".tmp", pid_file)   # atomic: no partial reads
    time.sleep(30.0)
    return "survived the kill window"


def runner(tmp_path, jobs=2, **kw):
    return ParallelRunner(jobs=jobs, cache=ResultCache(tmp_path / "c"),
                          **kw)


class TestTimeout:
    def test_sleeping_job_is_killed_not_awaited(self, tmp_path):
        specs = [JobSpec.make("_test_sleep", seconds=30.0,
                              timeout_s=0.5)]
        t0 = time.monotonic()
        (res,) = runner(tmp_path).run(specs)
        elapsed = time.monotonic() - t0
        assert elapsed < 10.0, "timeout did not interrupt the sleep"
        assert not res.ok and res.error.is_timeout
        assert res.error.exc_type == "TimeoutError"
        assert "0.5" in res.error.message
        with pytest.raises(JobFailedError, match="failed"):
            res.unwrap()

    def test_runner_default_timeout_applies(self, tmp_path):
        specs = [JobSpec.make("_test_sleep", seconds=30.0)]
        (res,) = runner(tmp_path, timeout_s=0.5).run(specs)
        assert not res.ok and res.error.is_timeout

    def test_spec_timeout_overrides_runner_default(self, tmp_path):
        specs = [JobSpec.make("_test_sleep", seconds=0.05,
                              timeout_s=20.0)]
        (res,) = runner(tmp_path, timeout_s=0.01).run(specs)
        assert res.ok and res.value == "overslept"


class TestCrash:
    def test_dead_worker_yields_failed_result(self, tmp_path):
        specs = [JobSpec.make("_test_exit", code=17, timeout_s=20.0)]
        (res,) = runner(tmp_path).run(specs)
        assert not res.ok and res.error.is_crash
        assert res.error.exc_type == "WorkerCrashed"

    def test_crash_does_not_poison_siblings(self, tmp_path):
        specs = [JobSpec.make("_test_exit", timeout_s=20.0),
                 JobSpec.make("_test_quick", tag=1, timeout_s=20.0),
                 JobSpec.make("_test_quick", tag=2, timeout_s=20.0)]
        crashed, a, b = runner(tmp_path).run(specs)
        assert not crashed.ok and crashed.error.is_crash
        assert a.ok and a.value["tag"] == 1
        assert b.ok and b.value["tag"] == 2


class TestRetry:
    def test_flaky_succeeds_on_retry(self, tmp_path):
        marker = tmp_path / "attempts"
        specs = [JobSpec.make("_test_flaky", marker=str(marker),
                              fail_times=1, retries=2, timeout_s=20.0)]
        (res,) = runner(tmp_path, backoff_s=0.01).run(specs)
        assert res.ok and res.attempts == 2
        assert res.value["attempts"] == 2

    def test_retries_exhausted_keeps_last_error(self, tmp_path):
        marker = tmp_path / "attempts"
        specs = [JobSpec.make("_test_flaky", marker=str(marker),
                              fail_times=10, retries=2, timeout_s=20.0)]
        (res,) = runner(tmp_path, backoff_s=0.01).run(specs)
        assert not res.ok and res.attempts == 3
        assert res.error.kind == "error"
        assert res.error.exc_type == "RuntimeError"
        assert "flaky failure #3" in res.error.message

    def test_inline_path_retries_too(self, tmp_path):
        marker = tmp_path / "attempts"
        specs = [JobSpec.make("_test_flaky", marker=str(marker),
                              fail_times=1, retries=1)]
        (res,) = runner(tmp_path, jobs=1, backoff_s=0.01).run(specs)
        assert res.ok and res.attempts == 2


class TestMixedBatch:
    def test_every_failure_mode_in_one_batch(self, tmp_path):
        """The acceptance scenario: timeout + crash + transient failure
        + plain errors + successes in a single batch, all surviving,
        results in submission order."""
        marker = tmp_path / "attempts"
        specs = [
            JobSpec.make("_test_quick", tag=0, timeout_s=20.0),
            JobSpec.make("_test_sleep", seconds=30.0, timeout_s=0.5),
            JobSpec.make("_test_exit", timeout_s=20.0),
            JobSpec.make("_test_flaky", marker=str(marker),
                         fail_times=1, retries=2, timeout_s=20.0),
            JobSpec.make("_test_raise", message="kaput",
                         timeout_s=20.0),
            JobSpec.make("_test_quick", tag=5, timeout_s=20.0),
        ]
        results = runner(tmp_path, backoff_s=0.01).run(specs)
        assert len(results) == len(specs)
        assert [r.spec.kind for r in results] == [s.kind for s in specs]

        ok0, timed, crashed, flaky, raised, ok5 = results
        assert ok0.ok and ok0.value["tag"] == 0
        assert timed.error.is_timeout
        assert crashed.error.is_crash
        assert flaky.ok and flaky.attempts == 2
        assert raised.error.kind == "error"
        assert raised.error.exc_type == "ValueError"
        assert "kaput" in raised.error.message
        assert raised.error.traceback  # full worker traceback captured
        assert ok5.ok and ok5.value["tag"] == 5

    def test_batch_trace_labels_outcomes(self, tmp_path):
        marker = tmp_path / "attempts"
        specs = [
            JobSpec.make("_test_sleep", seconds=30.0, timeout_s=0.3),
            JobSpec.make("_test_flaky", marker=str(marker),
                         fail_times=1, retries=1, timeout_s=20.0),
            JobSpec.make("_test_quick", timeout_s=20.0),
        ]
        with obs.capture() as tr:
            runner(tmp_path, backoff_s=0.01).run(specs)
        jobs = [r for r in tr.export() if r["name"] == "exp.job"]
        outcomes = {r["attrs"]["outcome"] for r in jobs}
        assert {"timeout", "retry:error", "ok"} <= outcomes
        (batch,) = [r for r in tr.export() if r["name"] == "exp.batch"]
        assert batch["attrs"]["failures"] == 1


class TestWorkerTraces:
    def test_worker_spans_graft_under_their_job(self, tmp_path):
        specs = [JobSpec.make("_test_traced", depth=2, timeout_s=20.0)]
        with obs.capture() as tr:
            (res,) = runner(tmp_path).run(specs)
        assert res.ok
        recs = tr.export()
        (job,) = [r for r in recs if r["name"] == "exp.job"]
        (outer,) = [r for r in recs if r["name"] == "task.outer"]
        (inner,) = [r for r in recs if r["name"] == "task.inner"]
        assert outer["parent_id"] == job["span_id"]
        assert inner["parent_id"] == outer["span_id"]


class TestCheckpointing:
    def test_partial_batch_resumes_from_cache(self, tmp_path):
        """Jobs cached as they finish: a batch with one poison job
        leaves the good results on disk, and the re-run only recomputes
        the poison one."""
        cache_dir = tmp_path / "shared"
        specs = [JobSpec.make("_test_quick", tag=t, timeout_s=20.0)
                 for t in range(3)]
        poison = JobSpec.make("_test_exit", timeout_s=20.0)

        first = ParallelRunner(jobs=2, cache=ResultCache(cache_dir))
        results = first.run([*specs, poison])
        assert [r.ok for r in results] == [True, True, True, False]

        second = ParallelRunner(jobs=2, cache=ResultCache(cache_dir))
        rerun = second.run([*specs, poison])
        assert [r.cached for r in rerun] == [True, True, True, False]
        assert [r.value["tag"] for r in rerun[:3]] == [0, 1, 2]
        # Failures are never cached -- the poison job ran again.
        assert not rerun[3].ok and second.cache.hits == 3

    def test_interrupted_sweep_resumes(self, tmp_path):
        """Simulate an interrupt: run half the sweep, then the full
        sweep against the same cache; the first half is pure reads."""
        cache_dir = tmp_path / "shared"
        all_specs = [JobSpec.make("_test_quick", tag=t, timeout_s=20.0)
                     for t in range(4)]
        ParallelRunner(jobs=2,
                       cache=ResultCache(cache_dir)).run(all_specs[:2])
        cache = ResultCache(cache_dir)
        results = ParallelRunner(jobs=2, cache=cache).run(all_specs)
        assert [r.cached for r in results] == [True, True, False, False]
        assert [r.value["tag"] for r in results] == [0, 1, 2, 3]


class TestPoolFaultMatrix:
    """Supervision contract of the persistent warm pool: a killed or
    overdue worker is replaced, the victim job retries per its spec,
    and jobs on healthy workers are untouched."""

    def test_sigkill_mid_job_replaces_worker_and_retries(self, tmp_path):
        pool = get_pool(2)
        pids_before = {w.proc.pid for w in pool.workers}
        pid_file = str(tmp_path / "victim.pid")
        marker = str(tmp_path / "ran.once")

        def sniper():
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if os.path.exists(pid_file):
                    os.kill(int(open(pid_file).read()), signal.SIGKILL)
                    return
                time.sleep(0.005)

        shooter = threading.Thread(target=sniper, daemon=True)
        shooter.start()
        specs = [JobSpec.make("_test_killable", pid_file=pid_file,
                              once_marker=marker, retries=1,
                              timeout_s=25.0)]
        specs += [JobSpec.make("_test_quick", tag=t, timeout_s=25.0)
                  for t in range(1, 5)]
        with obs.metrics.collect() as ms:
            results = runner(tmp_path, pool="persistent",
                             backoff_s=0.01).run(specs)
        shooter.join(5.0)

        victim, *healthy = results
        assert victim.ok and victim.attempts == 2
        assert victim.value["retried"] is True
        for t, r in enumerate(healthy, start=1):
            assert r.ok and r.value["tag"] == t
        # The supervisor spawned at least one replacement...
        rows = {(r["name"]): r for r in ms.export()}
        assert rows["exp.pool.spawns"]["value"] >= 1
        # ...and the pool is healthy again: same size, all alive, with
        # the murdered pid gone.
        pool = get_pool(2)
        assert len(pool.workers) == 2
        assert all(w.proc.is_alive() for w in pool.workers)
        pids_after = {w.proc.pid for w in pool.workers}
        killed = {int(open(pid_file).read())}
        assert not (killed & pids_after)
        assert pids_before  # sanity: pool existed before the batch

    def test_pool_timeout_charges_only_the_overdue_job(self, tmp_path):
        specs = [JobSpec.make("_test_sleep", seconds=30.0,
                              timeout_s=0.5),
                 JobSpec.make("_test_quick", tag=1, timeout_s=25.0),
                 JobSpec.make("_test_quick", tag=2, timeout_s=25.0)]
        t0 = time.monotonic()
        timed, a, b = runner(tmp_path, pool="persistent").run(specs)
        assert time.monotonic() - t0 < 10.0
        assert not timed.ok and timed.error.is_timeout
        assert "0.5" in timed.error.message
        assert a.ok and a.value["tag"] == 1
        assert b.ok and b.value["tag"] == 2

    def test_chunked_siblings_requeue_without_burning_attempts(
            self, tmp_path):
        """Kill the worker while it runs the head of a chunk: the
        sibling jobs queued behind it in the same chunk must complete
        with ``attempts == 1`` (they never started)."""
        pid_file = str(tmp_path / "victim.pid")
        marker = str(tmp_path / "ran.once")

        def sniper():
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if os.path.exists(pid_file):
                    os.kill(int(open(pid_file).read()), signal.SIGKILL)
                    return
                time.sleep(0.005)

        threading.Thread(target=sniper, daemon=True).start()
        specs = [JobSpec.make("_test_killable", pid_file=pid_file,
                              once_marker=marker, retries=1,
                              timeout_s=25.0)]
        specs += [JobSpec.make("_test_quick", tag=t, timeout_s=25.0)
                  for t in range(1, 9)]
        # One worker and one big chunk: every job rides behind the
        # victim in its chunk.
        results = ParallelRunner(jobs=1, cache=NullCache(),
                                 pool="persistent", chunk=16,
                                 timeout_s=25.0,
                                 backoff_s=0.01).run(specs)
        victim, *rest = results
        assert victim.ok and victim.attempts == 2
        assert all(r.ok and r.attempts == 1 for r in rest)
        assert [r.value["tag"] for r in rest] == list(range(1, 9))

    def test_pool_worker_reuse_across_batches(self, tmp_path):
        specs = [JobSpec.make("_test_quick", tag=t) for t in range(6)]
        r = ParallelRunner(jobs=3, cache=NullCache(), pool="persistent")
        pids_a = {x.value["pid"] for x in r.run(specs)}
        pids_b = {x.value["pid"] for x in r.run(specs)}
        assert pids_a == pids_b, "warm workers were not reused"
        assert len(pids_a) <= 3


class TestPoolDeterminism:
    def test_values_identical_across_workers_chunking_and_modes(
            self, tmp_path):
        """Acceptance contract: bit-identical JobResult values for
        jobs=1/2/8, chunking on/off, and both pool modes."""
        specs = [JobSpec.make("selftest", x=float(t))
                 for t in range(12)]
        specs.append(JobSpec.make("selftest", x=3.5, array_len=20_000))
        baseline = None
        for jobs in (1, 2, 8):
            for chunk in (1, 4):
                res = ParallelRunner(jobs=jobs, cache=NullCache(),
                                     pool="persistent",
                                     chunk=chunk).run(specs)
                assert all(r.ok for r in res)
                blob = pickle.dumps([r.value for r in res])
                if baseline is None:
                    baseline = blob
                assert blob == baseline, \
                    f"jobs={jobs} chunk={chunk} diverged"
        res = ParallelRunner(jobs=4, cache=NullCache(),
                             pool="per-job").run(specs)
        assert pickle.dumps([r.value for r in res]) == baseline, \
            "per-job oracle diverged from the persistent pool"


class TestJobErrorShape:
    def test_structured_triple(self):
        err = JobError(exc_type="ValueError", message="bad width",
                       traceback="Traceback ...", kind="error")
        assert str(err) == "Traceback ..."
        assert not err.is_timeout and not err.is_crash
        bare = JobError(exc_type="TimeoutError", message="too slow",
                        kind="timeout")
        assert str(bare) == "TimeoutError: too slow"
        assert bare.is_timeout

    def test_unwrap_carries_error_and_result(self, tmp_path):
        (res,) = ParallelRunner(
            jobs=1, cache=NullCache()).run(
                [JobSpec.make("_test_raise", message="why")])
        with pytest.raises(JobFailedError) as info:
            res.unwrap()
        assert info.value.result is res
        assert info.value.error.exc_type == "ValueError"
        assert "why" in str(info.value)
