"""Tests for the process-technology model."""

import pytest

from repro.circuit.technology import STM018, MetalLayer, Technology


class TestMetalLayer:
    def test_metal3_is_lowest_cap_routing_layer(self):
        # The paper routes FPGA wires in metal 3 because it has the
        # lowest capacitance of the stack's routing-usable layers.
        m3 = STM018.metal("metal3")
        for name in ("metal1", "metal2", "metal4"):
            other = STM018.metal(name)
            assert m3.wire_cap_per_m() < other.wire_cap_per_m()

    def test_cap_decreases_with_spacing(self):
        m3 = STM018.metal("metal3")
        assert m3.wire_cap_per_m(1.0, 2.0) < m3.wire_cap_per_m(1.0, 1.0)

    def test_cap_increases_with_width(self):
        m3 = STM018.metal("metal3")
        assert m3.wire_cap_per_m(2.0, 1.0) > m3.wire_cap_per_m(1.0, 1.0)

    def test_resistance_halves_at_double_width(self):
        m3 = STM018.metal("metal3")
        assert m3.wire_res_per_m(2.0) == pytest.approx(
            m3.wire_res_per_m(1.0) / 2)

    def test_pitch_grows_with_width_and_spacing(self):
        m3 = STM018.metal("metal3")
        assert m3.wire_pitch(2.0, 2.0) > m3.wire_pitch(1.0, 1.0)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            STM018.metal("metal3").wire_res_per_m(0.0)
        with pytest.raises(ValueError):
            STM018.metal("metal3").wire_cap_per_m(1.0, -1.0)

    def test_unknown_layer(self):
        with pytest.raises(KeyError):
            STM018.metal("metal9")


class TestTechnology:
    def test_vdd_is_18v(self):
        assert STM018.vdd == pytest.approx(1.8)

    def test_gate_cap_scale(self):
        # Minimum device gate cap should be around 0.5-1 fF.
        c = STM018.gate_cap(STM018.w_min)
        assert 0.2e-15 < c < 2e-15

    def test_junction_cap_scales_with_width(self):
        c1 = STM018.junction_cap(STM018.w_min)
        c10 = STM018.junction_cap(10 * STM018.w_min)
        assert c10 == pytest.approx(10 * c1)

    def test_beta_nmos_stronger_than_pmos(self):
        w = STM018.w_min
        assert STM018.beta(w, ptype=False) > STM018.beta(w, ptype=True)

    def test_transistor_area_units_convention(self):
        # Betz convention: min width costs 1 unit; k x min costs
        # 0.5 + 0.5k.
        assert STM018.transistor_area_units(STM018.w_min) == \
            pytest.approx(1.0)
        assert STM018.transistor_area_units(10 * STM018.w_min) == \
            pytest.approx(5.5)

    def test_scaled_override(self):
        t = STM018.scaled(vdd=1.5)
        assert t.vdd == 1.5
        assert STM018.vdd == pytest.approx(1.8)   # original untouched

    def test_min_transistor_area_positive(self):
        assert STM018.min_transistor_area() > 0
