"""Tests for architecture parameters, DUTYS files, fabric, RR graph."""

import pytest

from repro.arch import (ArchParams, DEFAULT_ARCH, FabricGrid, Site,
                        build_rr_graph, eq1_inputs, generate_arch_file,
                        parse_arch_file)


class TestParams:
    def test_eq1(self):
        # I = (K/2)(N+1): the paper's provisioning formula.
        assert eq1_inputs(4, 5) == 12
        assert eq1_inputs(4, 7) == 16
        assert eq1_inputs(6, 5) == 18

    def test_default_matches_paper_selection(self):
        a = DEFAULT_ARCH
        assert (a.n, a.k, a.inputs_per_clb) == (5, 4, 12)
        assert a.clb_outputs == 5
        assert a.fs == 3
        assert a.switch_width_mult == 10.0
        assert a.metal_spacing_mult == 2.0   # min width, double spacing

    def test_explicit_i_override(self):
        a = ArchParams(i=9)
        assert a.inputs_per_clb == 9

    def test_grid_sizing(self):
        a = DEFAULT_ARCH
        assert a.grid_size_for(9, 4) == 3
        assert a.grid_size_for(1, 100) >= 13


class TestDutys:
    def test_roundtrip(self):
        a = ArchParams(n=6, k=5, channel_width=20,
                       switch_width_mult=16.0)
        a2 = parse_arch_file(generate_arch_file(a))
        assert a2.n == 6 and a2.k == 5
        assert a2.channel_width == 20
        assert a2.switch_width_mult == 16.0
        assert a2.inputs_per_clb == a.inputs_per_clb

    def test_unknown_keywords_tolerated(self):
        text = generate_arch_file(DEFAULT_ARCH) + "\nfuture_keyword 3\n"
        parse_arch_file(text)   # must not raise

    def test_comments_ignored(self):
        text = "# hi\nsubblocks_per_clb 7 # cluster\n"
        assert parse_arch_file(text).n == 7


class TestFabric:
    def test_site_counts(self):
        g = FabricGrid(DEFAULT_ARCH, 4)
        assert len(g.clb_sites()) == 16
        # Perimeter: 4 sides x 4 positions x io_rat.
        assert len(g.io_sites()) == 4 * 4 * DEFAULT_ARCH.io_rat

    def test_channel_counts(self):
        g = FabricGrid(DEFAULT_ARCH, 3)
        assert len(g.chanx_positions()) == 3 * 4
        assert len(g.chany_positions()) == 4 * 3

    def test_io_channel_mapping(self):
        g = FabricGrid(DEFAULT_ARCH, 3)
        assert g.io_channel(Site("io", 2, 0)) == ("chanx", 2, 0)
        assert g.io_channel(Site("io", 0, 1)) == ("chany", 0, 1)
        assert g.io_channel(Site("io", 2, 4)) == ("chanx", 2, 3)
        with pytest.raises(ValueError):
            g.io_channel(Site("io", 2, 2))

    def test_clb_channels(self):
        g = FabricGrid(DEFAULT_ARCH, 3)
        chans = g.clb_channels(2, 2)
        assert ("chanx", 2, 1) in chans and ("chany", 2, 2) in chans

    def test_bad_size(self):
        with pytest.raises(ValueError):
            FabricGrid(DEFAULT_ARCH, 0)


class TestRRGraph:
    @pytest.fixture(scope="class")
    def g(self):
        return build_rr_graph(DEFAULT_ARCH, 3)

    def test_node_counts(self, g):
        stats = g.stats()
        w = DEFAULT_ARCH.channel_width
        assert stats["CHANX"] == 3 * 4 * w
        assert stats["CHANY"] == 4 * 3 * w
        # One source+sink per CLB and per IO pad.
        n_blocks = 9 + 4 * 3 * DEFAULT_ARCH.io_rat
        assert stats["SOURCE"] == n_blocks
        assert stats["SINK"] == n_blocks

    def test_disjoint_switchbox_preserves_track(self, g):
        # Every CHAN->CHAN edge must connect equal track indices.
        for node in g.track_nodes():
            for e in node.edges:
                other = g.nodes[e]
                if other.kind in ("CHANX", "CHANY"):
                    assert other.ptc == node.ptc

    def test_fs_is_3(self, g):
        # An interior wire end meets exactly 3 others at a switch box.
        # Count CHAN neighbours of an interior chanx node: two ends x 3.
        node = g.nodes[g.chan_node("chanx", 2, 1, 0)]
        chan_neigh = [e for e in node.edges
                      if g.nodes[e].kind in ("CHANX", "CHANY")]
        assert len(chan_neigh) == 6

    def test_fc_full_connectivity(self, g):
        # Fc = 1.0: every IPIN is fed by all W tracks of its channel.
        w = DEFAULT_ARCH.channel_width
        ipins = [n for n in g.nodes if n.kind == "IPIN"
                 and (n.x, n.y) == (2, 2)]
        incoming = {i.idx: 0 for i in ipins}
        for node in g.track_nodes():
            for e in node.edges:
                if e in incoming:
                    incoming[e] += 1
        assert all(cnt == w for cnt in incoming.values())

    def test_pins_reach_sink(self, g):
        for node in g.nodes:
            if node.kind == "IPIN":
                assert any(g.nodes[e].kind == "SINK"
                           for e in node.edges)

    def test_rc_annotation(self, g):
        for node in g.track_nodes():
            assert node.r_ohm > 0 and node.c_f > 0
        assert g.switch_r > 0 and g.switch_c > 0

    def test_wider_switch_lowers_resistance(self):
        from dataclasses import replace
        g10 = build_rr_graph(DEFAULT_ARCH, 2)
        g64 = build_rr_graph(replace(DEFAULT_ARCH,
                                     switch_width_mult=64.0), 2)
        assert g64.switch_r < g10.switch_r
        assert g64.switch_c > g10.switch_c
