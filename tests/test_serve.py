"""End-to-end job-server tests over real HTTP.

The acceptance path for the service: submit a design, watch per-stage
progress stream while it runs, fetch the artifact; submit the identical
design again and get the artifact back without re-execution.  Plus
graceful drain with queue persistence and resume.
"""

import asyncio
import threading
import time
from contextlib import contextmanager

import pytest

from repro import api
from repro.api import JobRequest
from repro.serve import ArtifactStore, JobServer, ServiceClient
from tests.test_flow import COUNTER_VHDL


@contextmanager
def running_server(config, **kwargs):
    """A JobServer on an ephemeral port, driven by a thread's loop."""
    server = JobServer(config, port=0, **kwargs)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def drive():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=drive, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to start"
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(),
                                         loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


@pytest.fixture
def config(tmp_path):
    return api.Config.from_env(jobs=1,
                               cache_dir=str(tmp_path / "cache"),
                               run_db=str(tmp_path / "runs.db"))


@pytest.fixture
def artifact_dir(tmp_path):
    return str(tmp_path / "artifacts")


def test_submit_twice_second_is_artifact_hit(config, artifact_dir):
    """The ISSUE acceptance test: first run executes with progress
    events; the identical resubmission is served from the store."""
    request = JobRequest(kind="flow", vhdl=COUNTER_VHDL)
    with running_server(config, artifact_dir=artifact_dir) as server:
        client = ServiceClient(port=server.port)

        first = client.submit(request)
        assert first.state in ("queued", "running")
        assert not first.cached

        # Progress: the event stream carries flow.* stage spans and
        # ends with the terminal event.
        events = list(client.events(first.id))
        stage_names = {e["stage"] for e in events
                       if e.get("event") == "stage"}
        assert any(s.startswith("flow.") for s in stage_names)
        assert {"flow.synthesis", "flow.place_route"} <= stage_names
        assert events[-1]["event"] in ("done", "failed")

        first = client.wait(first.id, timeout=120)
        assert first.state == "done"
        assert not first.cached
        assert first.artifact == request.content_hash()

        value = client.artifact(first.artifact)
        assert value["kind"] == "flow"
        assert value["value"]["summary"]["circuit"] == "counter"

        served_before = server.health()["served"]
        second = client.submit(request)
        assert second.state == "done"
        assert second.cached
        assert second.artifact == first.artifact
        # Nothing executed: the terminal state came straight from the
        # artifact store, not the executor.
        assert server.health()["served"] == served_before
        assert server.health()["cached_hits"] == 1
        assert client.artifact(second.artifact) == value


def test_experiment_over_http(config, artifact_dir):
    request = JobRequest(kind="experiment", experiment="table2",
                         dt=2e-12)
    with running_server(config, artifact_dir=artifact_dir) as server:
        client = ServiceClient(port=server.port)
        status = client.wait(client.submit(request).id, timeout=300)
        assert status.state == "done"
        value = client.artifact(status.artifact)
        assert value["value"]["experiment"] == "table2"
        assert value["value"]["rows"]["single_fJ"] > 0


def test_artifact_store_shared_across_server_restarts(
        config, artifact_dir):
    request = JobRequest(kind="flow", vhdl=COUNTER_VHDL)
    with running_server(config, artifact_dir=artifact_dir) as server:
        client = ServiceClient(port=server.port)
        status = client.wait(client.submit(request).id, timeout=120)
        assert status.state == "done"
    with running_server(config, artifact_dir=artifact_dir) as server:
        client = ServiceClient(port=server.port)
        status = client.submit(request)
        assert status.state == "done" and status.cached


def test_priority_orders_queue(config, artifact_dir, monkeypatch):
    """Higher-priority jobs pop first once the executor frees up."""
    gate = threading.Event()
    entered = threading.Event()
    ran = []

    def fake_submit(request, **kwargs):
        entered.set()
        gate.wait(30)
        ran.append(request.priority)
        return api.Result(kind="flow", value={"ok": True},
                          seconds=0.0, cached=False, artifact=None)

    monkeypatch.setattr(api, "submit", fake_submit)
    with running_server(config, artifact_dir=artifact_dir) as server:
        client = ServiceClient(port=server.port)
        # Distinct seeds keep content hashes distinct (no dedup).
        ids = [client.submit(JobRequest(kind="flow", vhdl=COUNTER_VHDL,
                                        seed=100, priority=0)).id]
        # Make sure the first job occupies the executor before the
        # contenders queue up behind it.
        assert entered.wait(10)
        for i, prio in enumerate([1, 5]):
            req = JobRequest(kind="flow", vhdl=COUNTER_VHDL,
                             seed=101 + i, priority=prio)
            ids.append(client.submit(req).id)
        gate.set()
        for job_id in ids:
            assert client.wait(job_id, timeout=60).state == "done"
    assert ran == [0, 5, 1]


def test_drain_persists_queue_and_resume_runs_it(
        config, artifact_dir, monkeypatch):
    """SIGTERM semantics: in-flight finishes, queued persists; a new
    server on the same run DB resumes and executes the backlog."""
    gate = threading.Event()
    real_submit = api.submit

    def gated_submit(request, **kwargs):
        gate.wait(30)
        return real_submit(request, **kwargs)

    monkeypatch.setattr(api, "submit", gated_submit)
    queued_req = JobRequest(kind="flow", vhdl=COUNTER_VHDL, seed=42)
    with running_server(config, artifact_dir=artifact_dir) as server:
        client = ServiceClient(port=server.port)
        inflight = client.submit(JobRequest(kind="flow",
                                            vhdl=COUNTER_VHDL))
        deadline = time.monotonic() + 10
        while (client.status(inflight.id).state != "running"
               and time.monotonic() < deadline):
            time.sleep(0.02)
        queued = client.submit(queued_req)
        assert client.status(queued.id).state == "queued"

        server.begin_drain()
        gate.set()
        assert server._drained.wait(60)
        # In-flight finished; queued never started.
        assert client.status(inflight.id).state == "done"
        assert client.status(queued.id).state == "queued"

    monkeypatch.setattr(api, "submit", real_submit)
    with running_server(config, artifact_dir=artifact_dir) as server:
        assert server.health()["resumed"] == 1
        client = ServiceClient(port=server.port)
        # The resumed job keeps running under its persisted identity.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if ArtifactStore(artifact_dir).has(
                    queued_req.content_hash()):
                break
            time.sleep(0.1)
        assert ArtifactStore(artifact_dir).has(
            queued_req.content_hash())

    # Nothing left to resume: the queue table was cleared on load.
    with running_server(config, artifact_dir=artifact_dir) as server:
        assert server.health()["resumed"] == 0


def test_failed_job_reports_structured_error(config, artifact_dir):
    bad = JobRequest(kind="flow",
                     vhdl="entity broken is\nport (q : out bit)\n")
    with running_server(config, artifact_dir=artifact_dir) as server:
        client = ServiceClient(port=server.port)
        status = client.wait(client.submit(bad).id, timeout=60)
        assert status.state == "failed"
        assert status.error is not None
        assert status.error.exc_type
        assert status.error.kind == "error"
        assert status.artifact is None
