"""Unit and integration tests for the tracing layer (:mod:`repro.obs`).

Covers the span primitives (nesting, attributes, counters, error
capture), tracer mechanics (emit, adopt/grafting, record cap, JSONL
round-trip), the disabled fast path, the report renderers, and the two
integration surfaces: a real flow run producing the per-stage span
tree, and the CLI ``--trace`` / ``trace`` / ``stats`` commands.
"""

import json

import pytest

from repro import obs
from repro.flow.cli import main as cli_main
from repro.flow.flow import FlowOptions, run_flow
from tests.test_flow import COUNTER_VHDL


def by_name(records, name):
    return [r for r in records if r["name"] == name]


# ---------------------------------------------------------------------------
# Span primitives
# ---------------------------------------------------------------------------

class TestSpan:
    def test_nesting_builds_parent_links(self):
        with obs.capture() as tr:
            with obs.span("outer", a=1) as outer:
                with obs.span("inner") as inner:
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
            assert obs.current_span() is None
        recs = tr.export()
        assert [r["name"] for r in recs] == ["inner", "outer"]
        inner_rec, outer_rec = recs
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None
        assert outer_rec["attrs"] == {"a": 1}
        assert outer_rec["seconds"] >= inner_rec["seconds"] >= 0.0
        assert outer_rec["t_wall"] > 0

    def test_attrs_counters_and_gauges(self):
        with obs.capture() as tr:
            with obs.span("work", kind="test") as sp:
                sp.set_attr(qor=3.5, ok=True)
                sp.incr("moves")
                sp.incr("moves", 4)
                sp.gauge("temp", 2.5)
                sp.gauge("temp", 1.25)
                # Module-level helpers hit the innermost open span.
                obs.incr("moves")
                obs.gauge("width", 8)
        (rec,) = tr.export()
        assert rec["attrs"] == {"kind": "test", "qor": 3.5, "ok": True}
        assert rec["counters"] == {"moves": 6, "temp": 1.25, "width": 8}

    def test_exception_recorded_and_propagated(self):
        with obs.capture() as tr:
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("nope")
        (rec,) = tr.export()
        assert rec["attrs"]["error"] == "ValueError"

    def test_incr_outside_any_span_is_noop(self):
        obs.incr("nothing")
        obs.gauge("nothing", 1)


class TestDisabled:
    def test_disabled_spans_record_nothing(self):
        with obs.capture() as tr:
            obs.set_enabled(False)
            try:
                sp = obs.span("invisible", x=1)
                assert sp is obs.NOOP_SPAN
                with sp:
                    sp.set_attr(y=2)
                    sp.incr("c")
                assert obs.emit("also-invisible") is None
            finally:
                obs.set_enabled(True)
            with obs.span("visible"):
                pass
        assert [r["name"] for r in tr.export()] == ["visible"]


# ---------------------------------------------------------------------------
# Tracer mechanics
# ---------------------------------------------------------------------------

class TestTracer:
    def test_emit_parents_under_current_span(self):
        with obs.capture() as tr:
            with obs.span("batch") as sp:
                sid = obs.emit("job", seconds=0.5, outcome="cached")
            assert sid is not None
        job = by_name(tr.export(), "job")[0]
        assert job["parent_id"] == sp.span_id
        assert job["seconds"] == 0.5
        assert job["attrs"]["outcome"] == "cached"

    def test_adopt_grafts_worker_roots(self):
        worker = obs.Tracer()
        with obs.capture(worker):
            with obs.span("w.root"):
                with obs.span("w.child"):
                    pass
        with obs.capture() as tr:
            with obs.span("job") as sp:
                obs.adopt(worker.export(), parent_id=sp.span_id)
        recs = tr.export()
        root = by_name(recs, "w.root")[0]
        child = by_name(recs, "w.child")[0]
        assert root["parent_id"] == sp.span_id
        assert child["parent_id"] == root["span_id"]

    def test_ids_unique_across_tracers(self):
        a, b = obs.Tracer(), obs.Tracer()
        with obs.capture(a):
            with obs.span("x"):
                pass
        with obs.capture(b):
            with obs.span("x"):
                pass
        ids = {r["span_id"] for r in a.export() + b.export()}
        assert len(ids) == 2

    def test_record_cap_counts_drops(self):
        tr = obs.Tracer(max_records=2)
        with obs.capture(tr):
            for i in range(5):
                obs.emit("e", i=i)
        assert len(tr) == 2 and tr.dropped == 3
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0

    def test_jsonl_roundtrip(self, tmp_path):
        with obs.capture() as tr:
            with obs.span("stage", circuit="c1", cache_hit=False) as sp:
                sp.incr("n", 3)
        path = tmp_path / "t.jsonl"
        assert tr.write_jsonl(path) == 1
        back = obs.load_jsonl(path)
        assert back == tr.export()

    def test_capture_isolates_the_default_tracer(self):
        before = len(obs.default_tracer())
        with obs.capture():
            with obs.span("inside"):
                pass
        assert len(obs.default_tracer()) == before


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

class TestReports:
    def _sample(self):
        with obs.capture() as tr:
            with obs.span("flow.run"):
                with obs.span("flow.synthesis", cache_hit=False):
                    pass
                with obs.span("flow.synthesis", cache_hit=True):
                    pass
                obs.emit("exp.job", outcome="retry:timeout")
        return tr.export()

    def test_render_tree_shape(self):
        recs = self._sample()
        text = obs.render_tree(recs)
        lines = text.splitlines()
        assert lines[0].startswith("flow.run")
        assert sum(1 for ln in lines if "flow.synthesis" in ln) == 2
        assert "[miss]" in text and "[hit]" in text
        assert any(ln.startswith(("|- ", "`- ")) for ln in lines[1:])

    def test_orphan_parents_become_roots(self):
        recs = [{"span_id": "x:1", "parent_id": "gone", "name": "lost",
                 "t_wall": 1.0, "seconds": 0.1, "attrs": {},
                 "counters": {}}]
        assert obs.render_tree(recs).startswith("lost")
        assert obs.render_tree([]) == "(empty trace)"

    def test_aggregate_counts_hits_and_errors(self):
        rows = {r["span"]: r for r in obs.aggregate(self._sample())}
        synth = rows["flow.synthesis"]
        assert synth["count"] == 2
        assert synth["hits"] == 1 and synth["misses"] == 1
        assert rows["exp.job"]["errors"] == 1
        assert rows["flow.run"]["errors"] == 0

    def test_render_stats_table(self):
        text = obs.render_stats(self._sample())
        assert "span" in text.splitlines()[0]
        assert "flow.synthesis" in text and "1/1" in text
        assert obs.render_stats([]) == "(empty trace)"

    @pytest.mark.parametrize("s,expect", [
        (2.5, "2.50s"), (0.0123, "12.3ms"), (4.2e-5, "42us"),
        (0.0, "0s"),
    ])
    def test_format_seconds(self, s, expect):
        assert obs.format_seconds(s) == expect


class TestRendererEdgeCases:
    """Degenerate traces the renderers must survive verbatim."""

    @staticmethod
    def rec(**kw):
        base = {"span_id": "t:1", "parent_id": None, "name": "s",
                "t_wall": 1.0, "seconds": 0.0, "attrs": {},
                "counters": {}}
        base.update(kw)
        return base

    def test_zero_duration_span(self):
        recs = [self.rec(name="instant", seconds=0.0)]
        assert "instant  0s" in obs.render_tree(recs)
        stats = obs.render_stats(recs)
        assert "instant" in stats and "0s" in stats

    def test_span_with_no_attributes(self):
        recs = [self.rec(name="bare", attrs={}, counters={})]
        line = obs.render_tree(recs).splitlines()[0]
        assert line == "bare  0s"       # no trailing k=v noise

    def test_missing_optional_fields(self):
        # A record written by an older tracer: no attrs/counters keys,
        # seconds None.
        recs = [{"span_id": "t:1", "parent_id": None, "name": "old",
                 "t_wall": 1.0, "seconds": None}]
        recs[0].pop("seconds")
        assert obs.render_tree(recs).startswith("old")
        assert obs.aggregate(recs)[0]["count"] == 1

    def test_unicode_labels_roundtrip(self, tmp_path):
        with obs.capture() as tr:
            with obs.span("flow.synthèse", circuit="càé-フロー") as sp:
                sp.incr("движения", 2)
        path = tmp_path / "u.jsonl"
        tr.write_jsonl(path)
        recs = obs.load_jsonl(path)
        tree = obs.render_tree(recs)
        assert "flow.synthèse" in tree and "càé-フロー" in tree
        assert "движения=2" in tree
        assert "flow.synthèse" in obs.render_stats(recs)

    def test_single_span_tree_has_no_branch_glyphs(self):
        recs = [self.rec(name="solo", seconds=1.0)]
        tree = obs.render_tree(recs)
        assert tree == "solo  1.00s"
        assert "|-" not in tree and "`-" not in tree


# ---------------------------------------------------------------------------
# Integration: flow and CLI
# ---------------------------------------------------------------------------

class TestFlowTracing:
    def test_flow_emits_stage_tree_with_qor(self, tmp_path):
        with obs.capture() as tr:
            run_flow(COUNTER_VHDL,
                     FlowOptions(seed=1, use_cache=True,
                                 cache_dir=tmp_path))
        recs = tr.export()
        names = {r["name"] for r in recs}
        assert {"flow.run", "flow.synthesis", "flow.translation",
                "flow.place_route", "flow.timing", "flow.power",
                "flow.bitstream", "place.anneal",
                "route.pathfinder"} <= names
        run = by_name(recs, "flow.run")[0]
        assert run["parent_id"] is None
        assert run["attrs"]["circuit"] == "counter"
        assert run["attrs"]["luts"] > 0
        assert run["attrs"]["channel_width"] > 0
        pr = by_name(recs, "flow.place_route")[0]
        assert pr["parent_id"] == run["span_id"]
        assert pr["attrs"]["cache_hit"] is False
        anneal = by_name(recs, "place.anneal")[0]
        assert anneal["parent_id"] == pr["span_id"]
        assert anneal["attrs"]["moves"] > 0

        # Warm re-run: same stages, now cache hits.
        with obs.capture() as tr2:
            run_flow(COUNTER_VHDL,
                     FlowOptions(seed=1, use_cache=True,
                                 cache_dir=tmp_path))
        pr2 = by_name(tr2.export(), "flow.place_route")[0]
        assert pr2["attrs"]["cache_hit"] is True


class TestCli:
    def test_trace_flag_then_trace_and_stats(self, tmp_path, capsys):
        vhd = tmp_path / "counter.vhd"
        vhd.write_text(COUNTER_VHDL)
        trace = tmp_path / "run.jsonl"
        assert cli_main(["flow", str(vhd), "--no-cache",
                         "--cache-dir", str(tmp_path / "cache"),
                         "--trace", str(trace)]) == 0
        capsys.readouterr()
        recs = obs.load_jsonl(trace)
        assert by_name(recs, "flow.run")

        assert cli_main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("flow.run")
        assert "flow.place_route" in out

        assert cli_main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "flow.place_route" in out and "span" in out

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch,
                                     capsys):
        vhd = tmp_path / "counter.vhd"
        vhd.write_text(COUNTER_VHDL)
        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv(obs.ENV_TRACE, str(trace))
        assert cli_main(["flow", str(vhd), "--no-cache",
                         "--cache-dir", str(tmp_path / "cache")]) == 0
        capsys.readouterr()
        assert by_name(obs.load_jsonl(trace), "flow.run")

    @pytest.mark.parametrize("cmd", ["trace", "stats"])
    def test_missing_trace_file_exits_two(self, tmp_path, capsys, cmd):
        rc = cli_main([cmd, str(tmp_path / "absent.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cannot read trace file" in err

    @pytest.mark.parametrize("cmd", ["trace", "stats"])
    def test_empty_trace_file_exits_two(self, tmp_path, capsys, cmd):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        rc = cli_main([cmd, str(path)])
        assert rc == 2
        assert "contains no spans" in capsys.readouterr().err

    @pytest.mark.parametrize("cmd", ["trace", "stats"])
    def test_truncated_trace_file_exits_two(self, tmp_path, capsys,
                                            cmd):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"span_id": "a:1", "name": "ok", '
                        '"parent_id": null, "t_wall": 1.0, '
                        '"seconds": 0.1, "attrs": {}, "counters": {}}\n'
                        '{"span_id": "a:2", "name": "trunc')
        rc = cli_main([cmd, str(path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "truncated or corrupt" in err

    def test_non_object_line_exits_two(self, tmp_path, capsys):
        path = tmp_path / "list.jsonl"
        path.write_text("[1, 2, 3]\n")
        rc = cli_main(["trace", str(path)])
        assert rc == 2
        assert "not a span record" in capsys.readouterr().err

    def test_exp_trace_records_batch(self, tmp_path, capsys,
                                     monkeypatch):
        # The scalar oracle fans table2 out as one job per config.
        monkeypatch.setenv("REPRO_SCALAR_ORACLE", "1")
        trace = tmp_path / "exp.jsonl"
        assert cli_main(["exp", "table2", "--dt", "8e-12",
                        "--cache-dir", str(tmp_path / "cache"),
                        "--trace", str(trace)]) == 0
        capsys.readouterr()
        recs = obs.load_jsonl(trace)
        batch = by_name(recs, "exp.batch")[0]
        assert batch["attrs"]["n_jobs"] == 3
        jobs = by_name(recs, "exp.job")
        assert len(jobs) == 3
        assert all(j["parent_id"] == batch["span_id"] for j in jobs)

    def test_exp_trace_batched_impl_single_job(self, tmp_path, capsys,
                                               monkeypatch):
        # The (default) batched engine folds table2 into one job.
        monkeypatch.delenv("REPRO_SCALAR_ORACLE", raising=False)
        monkeypatch.delenv("REPRO_SIM_IMPL", raising=False)
        trace = tmp_path / "exp.jsonl"
        assert cli_main(["exp", "table2", "--dt", "8e-12",
                        "--cache-dir", str(tmp_path / "cache"),
                        "--trace", str(trace)]) == 0
        capsys.readouterr()
        recs = obs.load_jsonl(trace)
        batch = by_name(recs, "exp.batch")[0]
        assert batch["attrs"]["n_jobs"] == 1
        assert len(by_name(recs, "exp.job")) == 1


# ---------------------------------------------------------------------------
# Atomic JSONL export
# ---------------------------------------------------------------------------

class TestAtomicWrite:
    def _tracer(self, label):
        with obs.capture() as tr:
            with obs.span("stage", label=label):
                pass
        return tr

    def test_failed_replace_keeps_previous_file(self, tmp_path,
                                                monkeypatch):
        path = tmp_path / "t.jsonl"
        self._tracer("old").write_jsonl(path)
        before = path.read_text()

        import os as _os
        real_replace = _os.replace

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(_os, "replace", boom)
        with pytest.raises(OSError):
            self._tracer("new").write_jsonl(path)
        monkeypatch.setattr(_os, "replace", real_replace)

        # Previous export intact, no temp-file litter.
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]

    def test_no_temp_files_after_success(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._tracer("x").write_jsonl(path)
        assert list(tmp_path.iterdir()) == [path]


# ---------------------------------------------------------------------------
# Chrome trace-event conversion
# ---------------------------------------------------------------------------

class TestChromeTrace:
    def _records(self):
        with obs.capture() as tr:
            with obs.span("flow.run", circuit="c17") as sp:
                sp.incr("luts", 12)
                with obs.span("flow.place"):
                    pass
                obs.emit("flow.note", level="info")
        return tr.export()

    def test_events_cover_every_record(self):
        recs = self._records()
        events = obs.chrome_trace_events(recs)
        data = [e for e in events if e["ph"] != "M"]
        assert len(data) == len(recs)
        by_name = {e["name"]: e for e in data}
        run = by_name["flow.run"]
        assert run["ph"] == "X" and run["dur"] > 0
        assert run["ts"] > 0
        assert run["args"]["circuit"] == "c17"
        assert run["args"]["counter.luts"] == 12
        # zero-duration emit becomes a thread-scoped instant
        note = by_name["flow.note"]
        assert note["ph"] == "i" and note["s"] == "t"

    def test_metadata_names_process_and_threads(self):
        events = obs.chrome_trace_events(self._records())
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "repro-flow"
        assert all(e["name"] in ("process_name", "thread_name")
                   for e in meta)
        tids = {e["tid"] for e in events if e["ph"] != "M"}
        named = {e["tid"] for e in meta if e["name"] == "thread_name"}
        assert tids <= named

    def test_sorted_by_timestamp(self):
        events = obs.chrome_trace_events(self._records())
        ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_deterministic_for_same_input(self):
        recs = self._records()
        assert obs.chrome_trace_events(recs) \
            == obs.chrome_trace_events(recs)

    def test_write_chrome_trace_file(self, tmp_path):
        path = tmp_path / "t.chrome.json"
        n = obs.write_chrome_trace(self._records(), path)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == n
        assert list(tmp_path.iterdir()) == [path]

    def test_cli_trace_chrome_format(self, tmp_path, capsys):
        src = tmp_path / "t.jsonl"
        with obs.capture() as tr:
            with obs.span("flow.run"):
                pass
        tr.write_jsonl(src)
        out = tmp_path / "out.json"
        assert cli_main(["trace", str(src), "--format", "chrome",
                         "-o", str(out)]) == 0
        assert "trace events" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "flow.run" in names

    def test_cli_default_output_path(self, tmp_path, capsys,
                                     monkeypatch):
        src = tmp_path / "t.jsonl"
        with obs.capture() as tr:
            with obs.span("flow.run"):
                pass
        tr.write_jsonl(src)
        assert cli_main(["trace", str(src), "--format",
                         "chrome"]) == 0
        capsys.readouterr()
        assert (tmp_path / "t.chrome.json").exists()
