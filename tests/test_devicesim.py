"""Tests for the bitstream-level device simulator.

These are the flow's strongest end-to-end checks: the FPGA model is
configured *only* from the generated bitstream and must reproduce the
mapped netlist's cycle-accurate behaviour.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DEFAULT_ARCH, build_rr_graph
from repro.bench import alu_slice, counter, lfsr, random_logic
from repro.bitgen import generate_bitstream, unpack_bitstream
from repro.bitgen.devicesim import (DeviceSimulator,
                                    pad_map_from_placement)
from repro.pack import pack_netlist
from repro.place import place
from repro.route import route
from repro.synth import optimize_and_map


def program_device(net, seed=6):
    """Run the back half of the flow and boot a device simulator."""
    mapped = optimize_and_map(net, 4).network
    cn = pack_netlist(mapped)
    pl = place(cn, DEFAULT_ARCH, seed=seed)
    g = build_rr_graph(DEFAULT_ARCH, pl.grid_size)
    rr = route(pl, g)
    assert rr.success
    bs = generate_bitstream(mapped, cn, pl, rr, g, DEFAULT_ARCH)
    cfg = unpack_bitstream(bs, DEFAULT_ARCH)
    dev = DeviceSimulator(cfg, pad_map_from_placement(pl))
    return mapped, dev


def _rand_vecs(inputs, n, seed):
    rng = random.Random(seed)
    return [{i: rng.randint(0, 1) for i in inputs} for _ in range(n)]


class TestDeviceMatchesNetlist:
    def test_counter(self):
        mapped, dev = program_device(counter(6))
        vecs = [{"en": 1}] * 20
        assert dev.run(vecs) == mapped.simulate(vecs)

    def test_alu(self):
        net = alu_slice(4)
        mapped, dev = program_device(net)
        vecs = _rand_vecs(net.inputs, 20, 4)
        assert dev.run(vecs) == mapped.simulate(vecs)

    def test_lfsr(self):
        net = lfsr(8, (0, 2, 3, 4))
        mapped, dev = program_device(net)
        vecs = [{"seed_in": 1}] + [{"seed_in": 0}] * 30
        assert dev.run(vecs) == mapped.simulate(vecs)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_random_designs(self, seed):
        net = random_logic("r", n_pi=6, n_po=4, n_nodes=30, seed=seed,
                           registered=bool(seed % 2))
        mapped, dev = program_device(net, seed=1 + seed % 3)
        vecs = _rand_vecs(net.inputs, 12, seed)
        assert dev.run(vecs) == mapped.simulate(vecs)

    def test_placement_seed_invariance(self):
        # Different placements, same bitstream-level behaviour.
        net = counter(5)
        vecs = [{"en": 1}] * 12
        _, dev_a = program_device(net, seed=1)
        _, dev_b = program_device(net, seed=42)
        assert dev_a.run(vecs) == dev_b.run(vecs)


class TestDeviceInternals:
    def test_reset_clears_state(self):
        mapped, dev = program_device(counter(4))
        dev.run([{"en": 1}] * 7)
        dev.reset()
        out = dev.run([{"en": 1}] * 3)
        vals = [sum(o[f"out{i}"] << i for i in range(4)) for o in out]
        assert vals == [0, 1, 2]

    def test_recovered_nets_single_driver(self):
        mapped, dev = program_device(counter(6))
        # driver_of construction already asserts single-driver; also
        # check every CLB input pin with a CB bit has a driver.
        for (x, y), clb in dev.cfg.clbs.items():
            for p, row in enumerate(clb.cb_in):
                if any(row):
                    assert ("clb_in", x, y, p) in dev.driver_of

    def test_active_ble_count_matches_packing(self):
        net = counter(6)
        mapped = optimize_and_map(net, 4).network
        cn = pack_netlist(mapped)
        pl = place(cn, DEFAULT_ARCH, seed=6)
        g = build_rr_graph(DEFAULT_ARCH, pl.grid_size)
        rr = route(pl, g)
        bs = generate_bitstream(mapped, cn, pl, rr, g, DEFAULT_ARCH)
        dev = DeviceSimulator(unpack_bitstream(bs, DEFAULT_ARCH),
                              pad_map_from_placement(pl))
        assert len(dev.bles) == cn.ble_count()
