"""Tests for the integrated flow, GUI, CLI and tool standalone use."""

import json
from pathlib import Path

import pytest

from repro.bench import counter
from repro.flow import (DesignFlow, FlowGui, FlowOptions, render_html,
                        render_text, run_flow)
from repro.flow.cli import main as cli_main
from repro.flow.flow import run_flow_from_logic

COUNTER_VHDL = """
entity counter is
  port (clk, rst, en : in std_logic;
        q : out std_logic_vector(3 downto 0));
end entity;
architecture rtl of counter is
  signal cnt, nxt : std_logic_vector(3 downto 0);
  signal c1, c2 : std_logic;
begin
  nxt(0) <= not cnt(0);
  c1 <= cnt(0);
  nxt(1) <= cnt(1) xor c1;
  c2 <= cnt(1) and c1;
  nxt(2) <= cnt(2) xor c2;
  nxt(3) <= cnt(3) xor (cnt(2) and c2);
  q <= cnt;
  process(clk) begin
    if rising_edge(clk) then
      if rst = '1' then cnt <= "0000";
      elsif en = '1' then cnt <= nxt;
      end if;
    end if;
  end process;
end architecture;
"""


@pytest.fixture(scope="module")
def counter_result():
    return run_flow(COUNTER_VHDL, FlowOptions(seed=2))


class TestFlow:
    def test_all_stages_produce_results(self, counter_result):
        r = counter_result
        assert r.structural is not None
        assert r.logic is not None and r.mapped is not None
        assert r.clustered is not None and r.placement is not None
        assert r.routing is not None and r.routing.success
        assert r.timing is not None and r.power is not None
        assert len(r.bitstream) > 0

    def test_summary_fields(self, counter_result):
        s = counter_result.summary()
        for key in ("circuit", "luts", "ffs", "clbs", "grid",
                    "channel_width", "fmax_MHz", "total_mW",
                    "bitstream_bytes"):
            assert key in s

    def test_stage_timings_recorded(self, counter_result):
        assert set(counter_result.stage_seconds) >= {
            "synthesis", "translation", "place_route", "power",
            "bitstream"}

    def test_flow_preserves_behaviour(self, counter_result):
        # The mapped network must still count.
        net = counter_result.mapped
        vecs = [{"rst": 1, "en": 1}] + [{"rst": 0, "en": 1}] * 6
        outs = net.simulate(vecs)
        val = lambda o: (o["q_0"] + 2 * o["q_1"] + 4 * o["q_2"]
                         + 8 * o["q_3"])
        assert [val(o) for o in outs[2:]] == [1, 2, 3, 4, 5]

    def test_syntax_error_stops_flow(self):
        with pytest.raises(ValueError):
            run_flow("entity broken is port (")

    def test_artifacts_written(self, tmp_path):
        run_flow(COUNTER_VHDL,
                 FlowOptions(work_dir=str(tmp_path), seed=2))
        names = {p.name for p in tmp_path.iterdir()}
        assert {"design.vhd", "diviner.edif", "druid.edif",
                "e2fmt.blif", "sis_mapped.blif", "tvpack.net",
                "dutys.arch", "vpr.place", "vpr.route",
                "powermodel.json", "design.bit"} <= names

    def test_flow_from_logic(self):
        res = run_flow_from_logic(counter(6), FlowOptions(seed=1))
        assert res.routing.success and res.bitstream


class TestGui:
    def test_run_and_render(self):
        gui = FlowGui()
        flow = DesignFlow(FlowOptions(seed=2))
        res = gui.run(flow, COUNTER_VHDL, echo=lambda *_: None)
        text = render_text(gui)
        assert all(s in text for s in DesignFlow.STAGES)
        assert "[x]" in text and "[ ]" not in text
        html = render_html(res, gui)
        assert "<html" in html and "counter" in html

    def test_failure_marked(self):
        gui = FlowGui()
        flow = DesignFlow()
        with pytest.raises(Exception):
            gui.run(flow, "entity x is port (", echo=lambda *_: None)
        assert gui.status["File Upload"] == "failed"

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            FlowGui().set("Coffee", "done")


class TestCli:
    def _write(self, tmp_path, name, text):
        p = tmp_path / name
        p.write_text(text)
        return str(p)

    def test_vhdlparse(self, tmp_path, capsys):
        src = self._write(tmp_path, "c.vhd", COUNTER_VHDL)
        assert cli_main(["vhdlparse", src]) == 0
        assert "syntax OK" in capsys.readouterr().out

    def test_vhdlparse_bad(self, tmp_path, capsys):
        src = self._write(tmp_path, "bad.vhd", "entity x is port(")
        assert cli_main(["vhdlparse", src]) == 1

    def test_tool_chain_standalone(self, tmp_path, capsys):
        """Each tool run separately, files handed between them."""
        src = self._write(tmp_path, "c.vhd", COUNTER_VHDL)
        edif = str(tmp_path / "c.edif")
        edif2 = str(tmp_path / "c2.edif")
        blif = str(tmp_path / "c.blif")
        mapped = str(tmp_path / "m.blif")
        netf = str(tmp_path / "c.net")
        archf = str(tmp_path / "fpga.arch")
        assert cli_main(["diviner", src, "-o", edif]) == 0
        assert cli_main(["druid", edif, "-o", edif2]) == 0
        assert cli_main(["e2fmt", edif2, "-o", blif]) == 0
        assert cli_main(["sis", blif, "-o", mapped, "-k", "4"]) == 0
        assert cli_main(["tvpack", mapped, "-o", netf]) == 0
        assert cli_main(["dutys", "-o", archf]) == 0
        for f in (edif, edif2, blif, mapped, netf, archf):
            assert Path(f).stat().st_size > 0

    def test_vpr_subcommand(self, tmp_path, capsys):
        from repro.netlist.blif import save_blif
        blif = str(tmp_path / "cnt.blif")
        save_blif(counter(6), blif)
        assert cli_main(["vpr", blif, "--workdir",
                         str(tmp_path / "out")]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["channel_width"] >= 1

    def test_full_flow_subcommand(self, tmp_path, capsys):
        src = self._write(tmp_path, "c.vhd", COUNTER_VHDL)
        html = str(tmp_path / "gui.html")
        assert cli_main(["flow", src, "--workdir",
                         str(tmp_path / "w"), "--html", html]) == 0
        assert Path(html).read_text().startswith("<!DOCTYPE html>")
